"""Wire format for pushing frame batches into a running daemon.

A *batch* is one time-sorted :class:`~repro.frames.Trace` segment,
serialised column by column in :data:`~repro.frames.TRACE_SCHEMA`
order (the same single source of truth the pcap reader materialises
from).  On a socket, batches travel length-prefixed::

    [4-byte magic "RPF1"][4-byte big-endian payload length][payload]

A zero-length payload is the end-of-feed marker: the producer is done
and the feed should finalize its report.  Anything malformed — wrong
magic, wrong payload size for the advertised row count, oversized
batch — raises :class:`FrameBatchError`; the serve layer turns that
into a failed feed without taking the daemon down.

The magic + length framing itself is the shared :mod:`repro.framing`
layer (the campaign dispatch protocol rides the same envelope under a
different magic); this module owns only the batch payload layout.

The payload layout is::

    [4-byte big-endian row count] [time_us rows][ftype rows]...[seq rows]

with each column's raw little-endian array bytes at its schema dtype.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

import numpy as np

from ..frames import TRACE_SCHEMA, Trace
from ..framing import FrameError, encode_frame, header_length
from ..protocol_registry import BATCH_MAGIC

if TYPE_CHECKING:  # pragma: no cover - typing only
    import asyncio

__all__ = [
    "BATCH_MAGIC",
    "MAX_BATCH_BYTES",
    "FrameBatchError",
    "encode_batch",
    "decode_batch",
    "encode_eof",
    "read_batches",
    "write_batch",
    "write_eof",
]

#: Upper bound on one batch's payload: a malicious or corrupt length
#: prefix must never make the daemon allocate unbounded memory.
MAX_BATCH_BYTES = 64 * 1024 * 1024

_ROW_BYTES = sum(np.dtype(dtype).itemsize for _, dtype in TRACE_SCHEMA)


class FrameBatchError(FrameError):
    """A pushed frame batch failed to decode (corrupt or mis-framed)."""


def encode_batch(trace: Trace) -> bytes:
    """Serialise one trace segment as a batch payload (no framing)."""
    parts = [struct.pack(">I", len(trace))]
    for name, dtype in TRACE_SCHEMA:
        column = np.ascontiguousarray(
            trace.column(name), dtype=np.dtype(dtype).newbyteorder("<")
        )
        parts.append(column.tobytes())
    return b"".join(parts)


def decode_batch(payload: bytes) -> Trace:
    """Parse a batch payload back into a :class:`Trace`.

    Validates the advertised row count against the actual payload size
    byte-for-byte, so a truncated or padded batch fails loudly instead
    of decoding shifted garbage.
    """
    if len(payload) < 4:
        raise FrameBatchError(
            f"batch payload too short for a row count ({len(payload)} bytes)"
        )
    (n_rows,) = struct.unpack(">I", payload[:4])
    expected = 4 + n_rows * _ROW_BYTES
    if len(payload) != expected:
        raise FrameBatchError(
            f"batch advertises {n_rows} rows ({expected} bytes) "
            f"but carries {len(payload)} bytes"
        )
    columns: dict[str, np.ndarray] = {}
    offset = 4
    for name, dtype in TRACE_SCHEMA:
        little = np.dtype(dtype).newbyteorder("<")
        end = offset + n_rows * little.itemsize
        columns[name] = np.frombuffer(
            payload[offset:end], dtype=little
        ).astype(dtype, copy=False)
        offset = end
    return Trace(columns)


def encode_eof() -> bytes:
    """The framed end-of-feed marker."""
    return encode_frame(b"", BATCH_MAGIC)


def frame_batch(payload: bytes) -> bytes:
    """Wrap an encoded batch payload in magic + length framing."""
    return encode_frame(payload, BATCH_MAGIC)


async def read_batches(reader: "asyncio.StreamReader"):
    """Yield decoded Traces from a framed socket stream.

    Terminates cleanly on the end-of-feed marker.  A connection that
    drops mid-batch raises :class:`ConnectionResetError`; bad magic, a
    silly length or an undecodable payload raise
    :class:`FrameBatchError`.  Either way the caller (the feed ingest
    task) records the failure on that one feed only.
    """
    import asyncio

    while True:
        try:
            header = await reader.readexactly(8)
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                # Clean EOF between batches but without the marker:
                # the producer vanished; treat as a mid-feed disconnect.
                raise ConnectionResetError(
                    "feed connection closed without end-of-feed marker"
                ) from error
            raise ConnectionResetError(
                "feed connection dropped mid-batch header"
            ) from error
        length = header_length(
            header,
            magic=BATCH_MAGIC,
            max_bytes=MAX_BATCH_BYTES,
            error=FrameBatchError,
        )
        if length == 0:
            return
        try:
            payload = await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise ConnectionResetError(
                "feed connection dropped mid-batch payload"
            ) from error
        yield decode_batch(payload)


async def write_batch(writer: "asyncio.StreamWriter", trace: Trace) -> None:
    """Send one framed batch (client-side helper, used by tests/tools)."""
    writer.write(frame_batch(encode_batch(trace)))
    await writer.drain()


async def write_eof(writer: "asyncio.StreamWriter") -> None:
    """Send the end-of-feed marker."""
    writer.write(encode_eof())
    await writer.drain()
