"""The always-on analysis daemon: JSON over HTTP, frames over TCP.

One resident :class:`ServeDaemon` multiplexes any number of live feeds
through incremental pipeline executors and answers, at any moment,
"is this feed congested right now?" — without re-reading anything.

Endpoints (all JSON; stdlib ``asyncio`` streams, no frameworks)::

    GET    /health                   liveness + feed/uptime counters
    GET    /metrics                  daemon + per-feed metrics
    GET    /feeds                    list feeds
    POST   /feeds                    create: {"kind": "push"|"scenario", ...}
    GET    /feeds/<id>               one feed's state
    GET    /feeds/<id>/report        rolling CongestionReport (JSON view)
    POST   /feeds/<id>/pcap          upload a radiotap pcap (raw body)
    POST   /feeds/<id>/frames        push one protocol batch payload
    POST   /feeds/<id>/eof           end the feed cleanly (drain + finalize)
    DELETE /feeds/<id>               remove a feed
    POST   /shutdown                 graceful drain, then exit

A second listener (the *ingest* port) accepts length-prefixed frame
batches per :mod:`repro.serve.protocol` — ``FEED <id>\\n`` then framed
batches — with TCP backpressure propagating straight from the feed's
bounded queue to the pushing client.

Fault containment is the design center: every per-feed failure (corrupt
batch, unsorted timestamps, truncated pcap, client disconnect) lands in
that feed's error record and ``/metrics``; the daemon keeps serving.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
from urllib.parse import unquote

from .feeds import DEFAULT_QUEUE_CHUNKS, FeedManager, UnknownFeedError
from .protocol import FrameBatchError, decode_batch, read_batches
from .reportjson import report_to_jsonable
from ..pipeline import DEFAULT_CHUNK_FRAMES

__all__ = ["ServeDaemon", "serve_main"]

_MAX_HEADER_BYTES = 32 * 1024
_MAX_JSON_BODY = 1024 * 1024
_BODY_CHUNK = 64 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServeDaemon:
    """The resident multi-feed analysis process (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ingest_port: int | None = 0,
        *,
        chunk_frames: int = DEFAULT_CHUNK_FRAMES,
        queue_chunks: int = DEFAULT_QUEUE_CHUNKS,
        max_feeds: int = 64,
        spool_dir: str | None = None,
    ) -> None:
        self.host = host
        self._want_port = port
        self._want_ingest = ingest_port
        self.manager = FeedManager(
            chunk_frames=chunk_frames,
            queue_chunks=queue_chunks,
            max_feeds=max_feeds,
        )
        self.spool_dir = spool_dir
        self.requests_total = 0
        self.requests_failed = 0
        self.ingest_connections = 0
        self._http_server: asyncio.AbstractServer | None = None
        self._ingest_server: asyncio.AbstractServer | None = None
        self._started_at: float | None = None
        self._shutdown_done = asyncio.Event()
        self._shutdown_task: asyncio.Task | None = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind the HTTP (and optional ingest) listeners."""
        loop = asyncio.get_running_loop()
        self._started_at = loop.time()
        self._http_server = await asyncio.start_server(
            self._handle_http, self.host, self._want_port
        )
        if self._want_ingest is not None:
            self._ingest_server = await asyncio.start_server(
                self._handle_ingest, self.host, self._want_ingest
            )

    @property
    def http_port(self) -> int:
        assert self._http_server is not None, "daemon not started"
        return self._http_server.sockets[0].getsockname()[1]

    @property
    def ingest_port(self) -> int | None:
        if self._ingest_server is None:
            return None
        return self._ingest_server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Block until a graceful shutdown completes."""
        await self._shutdown_done.wait()

    async def shutdown(self) -> None:
        """Stop accepting, drain every feed, finalize reports.  Idempotent."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self._do_shutdown()
            )
        await asyncio.shield(self._shutdown_task)

    async def _do_shutdown(self) -> None:
        for server in (self._http_server, self._ingest_server):
            if server is not None:
                server.close()
        await self.manager.shutdown()
        for server in (self._http_server, self._ingest_server):
            if server is not None:
                await server.wait_closed()
        self._shutdown_done.set()

    # -- HTTP plumbing ----------------------------------------------------

    async def _handle_http(self, reader, writer) -> None:
        self.requests_total += 1
        try:
            method, path, headers = await self._read_request_head(reader)
            status, payload = await self._route(method, path, headers, reader)
        except _HttpError as error:
            self.requests_failed += 1
            status, payload = error.status, {"error": str(error)}
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            writer.close()
            return
        except Exception as error:  # never take the daemon down on a request
            self.requests_failed += 1
            status, payload = 500, {
                "error": f"{type(error).__name__}: {error}"
            }
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _read_request_head(self, reader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "request head too large") from None
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line {lines[0]!r}") from None
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        return method.upper(), unquote(target.split("?", 1)[0]), headers

    async def _read_body(self, reader, headers, limit: int) -> bytes:
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length > limit:
            raise _HttpError(413, f"body of {length} bytes exceeds {limit}")
        if length == 0:
            return b""
        return await reader.readexactly(length)

    def _json_body(self, raw: bytes) -> dict:
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise _HttpError(400, f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "JSON body must be an object")
        return payload

    # -- routing ----------------------------------------------------------

    async def _route(self, method, path, headers, reader):
        parts = [p for p in path.split("/") if p]
        if path == "/health" and method == "GET":
            return 200, self._health()
        if path == "/metrics" and method == "GET":
            return 200, self._metrics()
        if path == "/shutdown" and method == "POST":
            if self._shutdown_task is None:
                self._shutdown_task = asyncio.get_running_loop().create_task(
                    self._do_shutdown()
                )
            return 202, {"status": "draining"}
        if path == "/feeds" and method == "GET":
            return 200, {
                "feeds": [f.info() for f in self.manager.feeds.values()]
            }
        if path == "/feeds" and method == "POST":
            raw = await self._read_body(reader, headers, _MAX_JSON_BODY)
            return await self._create_feed(self._json_body(raw))
        if len(parts) >= 2 and parts[0] == "feeds":
            return await self._feed_route(method, parts, headers, reader)
        raise _HttpError(404, f"no route for {method} {path}")

    async def _feed_route(self, method, parts, headers, reader):
        feed_id = parts[1]
        try:
            feed = self.manager.get(feed_id)
        except UnknownFeedError:
            raise _HttpError(404, f"unknown feed {feed_id!r}") from None
        tail = parts[2] if len(parts) == 3 else None
        if tail is None and method == "GET":
            return 200, feed.info()
        if tail is None and method == "DELETE":
            await self.manager.delete(feed_id)
            return 200, {"deleted": feed_id}
        if tail == "report" and method == "GET":
            return 200, report_to_jsonable(feed.report())
        if tail == "pcap" and method == "POST":
            return await self._upload_pcap(feed, headers, reader)
        if tail == "frames" and method == "POST":
            return await self._push_frames(feed, headers, reader)
        if tail == "eof" and method == "POST":
            if feed.state != "running":
                raise _HttpError(409, f"feed {feed.id} is {feed.state}")
            await feed.put_eof()
            await feed.done.wait()
            return 200, feed.info()
        raise _HttpError(404, f"no route for {method} /feeds/{feed_id}/{tail}")

    # -- handlers ---------------------------------------------------------

    def _health(self) -> dict:
        loop = asyncio.get_running_loop()
        uptime = loop.time() - self._started_at if self._started_at else 0.0
        states = self.manager.metrics()["states"]
        return {
            "status": "draining" if self._shutdown_task else "ok",
            "uptime_s": round(uptime, 3),
            "feeds": len(self.manager.feeds),
            "states": states,
        }

    def _metrics(self) -> dict:
        metrics = self.manager.metrics()
        metrics.update(
            requests_total=self.requests_total,
            requests_failed=self.requests_failed,
            ingest_connections=self.ingest_connections,
        )
        return metrics

    async def _create_feed(self, body: dict):
        kind = body.get("kind", "push")
        name = body.get("name")
        if name is not None and not isinstance(name, str):
            raise _HttpError(400, "feed name must be a string")
        try:
            if kind == "push":
                feed = self.manager.create_feed(name, "push")
            elif kind == "scenario":
                scenario = body.get("scenario")
                if not isinstance(scenario, str):
                    raise _HttpError(
                        400, "scenario feeds need a 'scenario' name"
                    )
                params = body.get("params", {})
                if not isinstance(params, dict):
                    raise _HttpError(400, "'params' must be an object")
                loop = asyncio.get_running_loop()
                from ..sim import build_scenario

                try:
                    built = await loop.run_in_executor(
                        None, lambda: build_scenario(scenario, **params)
                    )
                except (TypeError, ValueError, KeyError) as error:
                    raise _HttpError(400, f"bad scenario: {error}") from None
                window_s = float(body.get("window_s", 1.0))
                feed = self.manager.attach_scenario(
                    built, name, window_s=window_s
                )
            else:
                raise _HttpError(400, f"unknown feed kind {kind!r}")
        except (RuntimeError, ValueError) as error:
            raise _HttpError(409, str(error)) from None
        return 200, feed.info()

    async def _upload_pcap(self, feed, headers, reader):
        if feed.state != "running":
            raise _HttpError(409, f"feed {feed.id} is {feed.state}")
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length <= 0:
            raise _HttpError(400, "pcap upload needs a Content-Length body")
        # Spool to disk in bounded reads: the daemon's memory never holds
        # a whole capture, whatever its size.
        fd, spool = tempfile.mkstemp(
            suffix=".pcap", prefix=f"{feed.id}-", dir=self.spool_dir
        )
        try:
            remaining = length
            with os.fdopen(fd, "wb") as out:
                while remaining:
                    try:
                        block = await reader.readexactly(
                            min(remaining, _BODY_CHUNK)
                        )
                    except asyncio.IncompleteReadError as error:
                        # Client vanished mid-upload: that feed fails
                        # (visible in /metrics); the daemon lives on.
                        await feed.put_fault(
                            ConnectionResetError(
                                "client disconnected mid-upload "
                                f"({length - remaining + len(error.partial)}"
                                f"/{length} bytes)"
                            ),
                            "ingest",
                        )
                        raise
                    out.write(block)
                    remaining -= len(block)
            queued = await self.manager.ingest_pcap(feed, spool)
            return 200, {"queued_frames": queued, "state": feed.state}
        finally:
            try:
                os.unlink(spool)
            except OSError:
                pass

    async def _push_frames(self, feed, headers, reader):
        if feed.state != "running":
            raise _HttpError(409, f"feed {feed.id} is {feed.state}")
        raw = await self._read_body(
            reader, headers, limit=64 * 1024 * 1024
        )
        try:
            segment = decode_batch(raw)
        except FrameBatchError as error:
            # A corrupt HTTP push is the *pusher's* fault: reject the
            # batch, keep the feed alive, count the rejection.
            feed.ingest_errors += 1
            raise _HttpError(400, str(error)) from None
        await feed.put(segment)
        return 200, {
            "queued_frames": len(segment),
            "queue_depth": feed.queue.qsize(),
        }

    # -- TCP ingest -------------------------------------------------------

    async def _handle_ingest(self, reader, writer) -> None:
        """``FEED <id>\\n`` then length-prefixed batches (see protocol)."""
        self.ingest_connections += 1
        feed = None
        try:
            line = await reader.readline()
            words = line.decode("latin-1").split()
            if len(words) != 2 or words[0] != "FEED":
                writer.write(b"ERR expected 'FEED <id>'\n")
                return
            try:
                feed = self.manager.get(words[1])
            except UnknownFeedError:
                writer.write(f"ERR unknown feed {words[1]}\n".encode())
                return
            if feed.state != "running":
                writer.write(f"ERR feed is {feed.state}\n".encode())
                return
            frames = 0
            async for segment in read_batches(reader):
                await feed.put(segment)
                frames += len(segment)
            # Clean end-of-feed marker received: drain and finalize.
            await feed.put_eof()
            writer.write(f"OK {frames}\n".encode())
        except FrameBatchError as error:
            # Mid-stream corruption poisons the stream's framing: the
            # feed fails (prefix report kept), the daemon keeps serving.
            await feed.put_fault(error, "ingest")
            writer.write(f"ERR {error}\n".encode())
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ) as error:
            if feed is not None and feed.state == "running":
                await feed.put_fault(
                    ConnectionResetError(
                        f"ingest connection lost: {error}"
                    ),
                    "ingest",
                )
        finally:
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            writer.close()


async def serve_main(
    host: str = "127.0.0.1",
    port: int = 8433,
    ingest_port: int | None = 0,
    *,
    chunk_frames: int = DEFAULT_CHUNK_FRAMES,
    queue_chunks: int = DEFAULT_QUEUE_CHUNKS,
    max_feeds: int = 64,
    port_file: str | None = None,
    ready_message: bool = True,
) -> int:
    """Run a daemon until SIGINT/SIGTERM or ``POST /shutdown``; returns 0.

    ``port_file`` (for smoke tests and supervisors) gets a JSON
    ``{"http_port": ..., "ingest_port": ...}`` once the listeners are
    bound — the reliable way to use ephemeral ports.
    """
    import signal

    daemon = ServeDaemon(
        host,
        port,
        ingest_port,
        chunk_frames=chunk_frames,
        queue_chunks=queue_chunks,
        max_feeds=max_feeds,
    )
    await daemon.start()
    if port_file:
        payload = json.dumps(
            {"http_port": daemon.http_port, "ingest_port": daemon.ingest_port}
        )

        def _write_port_file() -> None:
            # Atomic write-then-rename; runs in the default executor so
            # a slow filesystem never stalls the freshly started loop.
            tmp = port_file + ".tmp"
            with open(tmp, "w") as handle:
                handle.write(payload)
            os.replace(tmp, port_file)

        await asyncio.get_running_loop().run_in_executor(
            None, _write_port_file
        )
    if ready_message:
        ingest = daemon.ingest_port
        print(
            f"repro serve: http://{host}:{daemon.http_port} "
            + (f"(ingest tcp port {ingest}) " if ingest else "")
            + "— POST /shutdown or Ctrl-C to drain and exit",
            flush=True,
        )
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(
                sig, lambda: loop.create_task(daemon.shutdown())
            )
        except NotImplementedError:  # pragma: no cover - non-unix
            pass
    await daemon.serve_until_shutdown()
    return 0
