"""Feed lifecycle: N independent bounded-memory streams, one executor each.

A **feed** is one live capture stream — an uploaded pcap, a socket
pushing frame batches, or an attached simulated scenario — analysed
incrementally by its own
:class:`~repro.pipeline.PipelineExecutor` (``feed``/``snapshot``/
``close``), so a rolling :class:`~repro.core.report.CongestionReport`
is available at any moment without re-reading anything.

Isolation and robustness rules (each pinned by ``tests/serve/``):

* **one worker task per feed** — a corrupt batch, unsorted timestamps
  or a truncated pcap fail *that* feed (state ``failed``, typed error
  recorded, partial report kept); every other feed and the daemon
  itself keep serving;
* **bounded ingest queues** — producers ``await put()`` into an
  :class:`asyncio.Queue` of ``queue_chunks`` segments; a slow consumer
  blocks the producer (TCP backpressure propagates to the client),
  never grows memory;
* **ordered failure** — a producer that hits damage enqueues the fault
  *behind* the clean segments it already queued, so the final report
  covers exactly the intact prefix;
* **graceful drain** — shutdown enqueues end-of-feed behind pending
  segments and waits for every worker, so nothing ingested is dropped.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.report import CongestionReport
from ..frames import NodeRoster, Trace
from ..pipeline import (
    DEFAULT_CHUNK_FRAMES,
    DEFAULT_CONSUMERS,
    ROSTER_CONSUMERS,
    PipelineExecutor,
    assemble_report,
    create_consumers,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.builder import BuiltScenario

__all__ = [
    "DEFAULT_QUEUE_CHUNKS",
    "Feed",
    "FeedError",
    "FeedManager",
    "UnknownFeedError",
]

#: Default ingest queue bound, in segments.  Small on purpose: the
#: queue is a shock absorber, not a buffer — sustained imbalance must
#: surface as producer backpressure, not memory growth.
DEFAULT_QUEUE_CHUNKS = 8


class UnknownFeedError(KeyError):
    """No feed with that id (never created, or already deleted)."""


@dataclass(frozen=True)
class FeedError:
    """Why a feed failed: typed, with where it happened and how far in."""

    error_type: str
    message: str
    where: str          # "ingest" (producer side) or "analyze" (worker side)
    at_frames: int      # frames successfully analysed before the failure

    def as_dict(self) -> dict[str, object]:
        return {
            "error_type": self.error_type,
            "message": self.message,
            "where": self.where,
            "at_frames": self.at_frames,
        }


class _Eof:
    """Queue sentinel: producer finished cleanly."""


class _Fault:
    """Queue sentinel: producer hit damage after the preceding segments."""

    def __init__(self, error: BaseException, where: str) -> None:
        self.error = error
        self.where = where


class Feed:
    """One live stream and its incremental analysis state.

    States: ``running`` → (``draining`` →) ``closed`` | ``failed``.
    The report is available in every state — rolling (a snapshot of
    the executor) while running, final and cached once closed/failed.
    """

    def __init__(
        self,
        feed_id: str,
        kind: str,
        *,
        roster: NodeRoster | None = None,
        chunk_frames: int = DEFAULT_CHUNK_FRAMES,
        queue_chunks: int = DEFAULT_QUEUE_CHUNKS,
    ) -> None:
        if queue_chunks < 1:
            raise ValueError("queue_chunks must be >= 1")
        self.id = feed_id
        self.kind = kind
        self.state = "running"
        self.roster = roster
        names = DEFAULT_CONSUMERS + (
            ROSTER_CONSUMERS if roster is not None else ()
        )
        self.executor = PipelineExecutor(
            create_consumers(names),
            name=feed_id,
            roster=roster,
            chunk_frames=chunk_frames,
        )
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_chunks)
        self.error: FeedError | None = None
        self.done = asyncio.Event()      # set once closed or failed
        self.frames_in = 0               # frames analysed by the worker
        self.batches_in = 0
        self.ingest_errors = 0           # rejected pushes that did NOT kill the feed
        self.put_waits = 0               # producer puts that found the queue full
        loop = asyncio.get_running_loop()
        self.created_at = loop.time()
        self.first_frame_at: float | None = None
        self.last_frame_at: float | None = None
        self._final: CongestionReport | None = None
        self._worker: asyncio.Task | None = None
        self._producer: asyncio.Task | None = None

    # -- producer side ----------------------------------------------------

    async def put(self, segment: Trace) -> None:
        """Queue one time-sorted segment; blocks when the queue is full."""
        if self.state not in ("running",):
            raise RuntimeError(f"feed {self.id} is {self.state}")
        if self.queue.full():
            self.put_waits += 1
        await self.queue.put(segment)

    async def put_eof(self) -> None:
        """Queue the clean end-of-feed marker; the feed starts draining."""
        if self.state == "running":
            self.state = "draining"
        await self.queue.put(_Eof())

    async def put_fault(self, error: BaseException, where: str) -> None:
        """Queue a producer-side failure *behind* already-queued segments."""
        if self.state == "running":
            self.state = "draining"
        await self.queue.put(_Fault(error, where))

    # -- worker side ------------------------------------------------------

    def _process(self, segment: Trace) -> None:
        """Fold one segment into the executor (overridable for tests)."""
        self.executor.feed(segment)

    async def _drive(self) -> None:
        """Per-feed worker: the only task that mutates the executor."""
        loop = asyncio.get_running_loop()
        while True:
            item = await self.queue.get()
            if isinstance(item, _Eof):
                self._finish("closed", None)
                return
            if isinstance(item, _Fault):
                self._finish(
                    "failed",
                    FeedError(
                        error_type=type(item.error).__name__,
                        message=str(item.error),
                        where=item.where,
                        at_frames=self.frames_in,
                    ),
                )
                return
            try:
                self._process(item)
            except Exception as error:
                self._finish(
                    "failed",
                    FeedError(
                        error_type=type(error).__name__,
                        message=str(error),
                        where="analyze",
                        at_frames=self.frames_in,
                    ),
                )
                return
            self.frames_in += len(item)
            self.batches_in += 1
            now = loop.time()
            if self.first_frame_at is None:
                self.first_frame_at = now
            self.last_frame_at = now

    def _finish(self, state: str, error: FeedError | None) -> None:
        self.state = state
        self.error = error
        try:
            self._final = assemble_report(self.executor.close(), name=self.id)
        except Exception as close_error:  # partial state that cannot finalize
            if error is None:
                self.state = "failed"
                self.error = FeedError(
                    error_type=type(close_error).__name__,
                    message=str(close_error),
                    where="analyze",
                    at_frames=self.frames_in,
                )
        self.done.set()

    # -- observation ------------------------------------------------------

    def report(self) -> CongestionReport:
        """The rolling (or final) congestion report, batch-equivalent.

        While the feed is live this snapshots the executor — the result
        is numerically identical to a batch ``run_all`` over everything
        analysed so far.  Closed and failed feeds return their cached
        final report (for failed feeds: the intact prefix).
        """
        if self._final is not None:
            return self._final
        return assemble_report(self.executor.snapshot(), name=self.id)

    def frames_per_sec(self) -> float:
        if (
            self.first_frame_at is None
            or self.last_frame_at is None
            or self.last_frame_at <= self.first_frame_at
        ):
            return 0.0
        return self.frames_in / (self.last_frame_at - self.first_frame_at)

    def info(self) -> dict[str, object]:
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "frames_in": self.frames_in,
            "batches_in": self.batches_in,
            "queue_depth": self.queue.qsize(),
            "put_waits": self.put_waits,
            "ingest_errors": self.ingest_errors,
            "frames_per_sec": round(self.frames_per_sec(), 1),
            "error": self.error.as_dict() if self.error else None,
        }


class FeedManager:
    """Create, drive, observe and drain the daemon's feeds.

    ``feed_class`` is the (sub)class instantiated per feed — tests use
    it to gate the worker deterministically; production never needs to
    touch it.
    """

    feed_class: type[Feed] = Feed

    def __init__(
        self,
        *,
        chunk_frames: int = DEFAULT_CHUNK_FRAMES,
        queue_chunks: int = DEFAULT_QUEUE_CHUNKS,
        max_feeds: int = 64,
    ) -> None:
        if max_feeds < 1:
            raise ValueError("max_feeds must be >= 1")
        self.chunk_frames = chunk_frames
        self.queue_chunks = queue_chunks
        self.max_feeds = max_feeds
        self.feeds: dict[str, Feed] = {}
        self._next_id = 1
        self._shutting_down = False

    # -- creation ---------------------------------------------------------

    def create_feed(
        self,
        name: str | None = None,
        kind: str = "push",
        *,
        roster: NodeRoster | None = None,
        chunk_frames: int | None = None,
        queue_chunks: int | None = None,
    ) -> Feed:
        """Register a feed and start its worker task."""
        if self._shutting_down:
            raise RuntimeError("server is shutting down; no new feeds")
        if len(self.feeds) >= self.max_feeds:
            raise RuntimeError(
                f"feed limit reached ({self.max_feeds}); delete one first"
            )
        feed_id = name if name else f"feed-{self._next_id}"
        self._next_id += 1
        if feed_id in self.feeds:
            raise ValueError(f"feed {feed_id!r} already exists")
        feed = self.feed_class(
            feed_id,
            kind,
            roster=roster,
            chunk_frames=chunk_frames or self.chunk_frames,
            queue_chunks=queue_chunks or self.queue_chunks,
        )
        feed._worker = asyncio.get_running_loop().create_task(feed._drive())
        self.feeds[feed_id] = feed
        return feed

    def attach_scenario(
        self,
        built: "BuiltScenario",
        name: str | None = None,
        *,
        chunk_frames: int | None = None,
        window_s: float = 1.0,
    ) -> Feed:
        """Attach a simulated scenario as a live feed.

        The scenario's ``stream()`` generator runs step by step in the
        default thread-pool executor (each ``next()`` simulates one
        window) so the event loop never blocks on simulation; segments
        flow through the same bounded queue as any other producer, so
        a slow analysis side backpressures the simulation too.
        """
        feed = self.create_feed(
            name, "scenario", roster=built.roster, chunk_frames=chunk_frames
        )
        chunks = built.stream(chunk_frames=chunk_frames or self.chunk_frames,
                              window_s=window_s)
        feed._producer = asyncio.get_running_loop().create_task(
            self._pump_generator(feed, chunks)
        )
        return feed

    async def _pump_generator(self, feed: Feed, chunks) -> None:
        """Drive a synchronous segment generator into a feed's queue."""
        loop = asyncio.get_running_loop()
        sentinel = object()
        try:
            while True:
                segment = await loop.run_in_executor(
                    None, next, chunks, sentinel
                )
                if segment is sentinel:
                    await feed.put_eof()
                    return
                await feed.put(segment)
        except asyncio.CancelledError:
            raise
        except Exception as error:
            await feed.put_fault(error, "ingest")

    async def ingest_pcap(self, feed: Feed, path) -> int:
        """Stream a pcap file into ``feed`` in bounded batches.

        Returns the number of frames queued.  A truncated or corrupt
        tail queues every clean batch first, then the typed fault —
        the feed fails with its partial report intact.
        """
        from ..pipeline import pcap_chunks

        loop = asyncio.get_running_loop()
        chunks = pcap_chunks(path, self.chunk_frames)
        sentinel = object()
        queued = 0
        while True:
            try:
                segment = await loop.run_in_executor(
                    None, next, chunks, sentinel
                )
            except Exception as error:
                await feed.put_fault(error, "ingest")
                return queued
            if segment is sentinel:
                return queued
            await feed.put(segment)
            queued += len(segment)

    # -- access -----------------------------------------------------------

    def get(self, feed_id: str) -> Feed:
        try:
            return self.feeds[feed_id]
        except KeyError:
            raise UnknownFeedError(feed_id) from None

    async def delete(self, feed_id: str) -> None:
        """Remove a feed, cancelling its tasks if still running."""
        feed = self.get(feed_id)
        del self.feeds[feed_id]
        for task in (feed._producer, feed._worker):
            if task is not None and not task.done():
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass

    # -- metrics ----------------------------------------------------------

    def metrics(self) -> dict[str, object]:
        states: dict[str, int] = {}
        for feed in self.feeds.values():
            states[feed.state] = states.get(feed.state, 0) + 1
        return {
            "feeds": len(self.feeds),
            "states": states,
            "frames_total": sum(f.frames_in for f in self.feeds.values()),
            "queue_depth_total": sum(
                f.queue.qsize() for f in self.feeds.values()
            ),
            "put_waits_total": sum(f.put_waits for f in self.feeds.values()),
            "ingest_errors_total": sum(
                f.ingest_errors for f in self.feeds.values()
            ),
            "per_feed": {
                feed_id: feed.info() for feed_id, feed in self.feeds.items()
            },
        }

    # -- shutdown ---------------------------------------------------------

    async def shutdown(self) -> None:
        """Graceful drain: finish every queued segment, then finalize.

        Producers are stopped first (scenario pumps cancelled), then
        end-of-feed is queued behind whatever each feed still holds, and
        every worker is awaited — nothing already ingested is dropped.
        Idempotent.
        """
        self._shutting_down = True
        feeds = list(self.feeds.values())
        for feed in feeds:
            if feed._producer is not None and not feed._producer.done():
                feed._producer.cancel()
                try:
                    await feed._producer
                except (asyncio.CancelledError, Exception):
                    pass
        for feed in feeds:
            if feed.state == "running":
                await feed.put_eof()
        for feed in feeds:
            if feed._worker is not None:
                await feed._worker
