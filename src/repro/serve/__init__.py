"""``repro serve`` — the always-on multi-feed analysis daemon.

Layers (each importable and testable on its own):

* :mod:`~repro.serve.protocol` — the length-prefixed frame-batch wire
  format (``RPF1`` framing over :data:`~repro.frames.TRACE_SCHEMA`);
* :mod:`~repro.serve.feeds` — :class:`FeedManager` / :class:`Feed`:
  per-feed worker tasks over incremental pipeline executors, bounded
  ingest queues, ordered fault delivery, graceful drain;
* :mod:`~repro.serve.reportjson` — the JSON view of a rolling
  :class:`~repro.core.report.CongestionReport`;
* :mod:`~repro.serve.server` — :class:`ServeDaemon`, the stdlib
  asyncio HTTP front end plus the TCP ingest listener, and
  :func:`serve_main` behind the ``repro serve`` CLI subcommand.
"""

from .feeds import (
    DEFAULT_QUEUE_CHUNKS,
    Feed,
    FeedError,
    FeedManager,
    UnknownFeedError,
)
from .protocol import (
    BATCH_MAGIC,
    MAX_BATCH_BYTES,
    FrameBatchError,
    decode_batch,
    encode_batch,
    encode_eof,
    frame_batch,
    read_batches,
    write_batch,
    write_eof,
)
from .reportjson import report_to_jsonable
from .server import ServeDaemon, serve_main

__all__ = [
    "BATCH_MAGIC",
    "DEFAULT_QUEUE_CHUNKS",
    "Feed",
    "FeedError",
    "FeedManager",
    "FrameBatchError",
    "MAX_BATCH_BYTES",
    "ServeDaemon",
    "UnknownFeedError",
    "decode_batch",
    "encode_batch",
    "encode_eof",
    "frame_batch",
    "read_batches",
    "report_to_jsonable",
    "serve_main",
    "write_batch",
    "write_eof",
]
