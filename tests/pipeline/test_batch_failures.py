"""run_batch fault capture: one bad capture never aborts the batch.

Mirrors the campaign store's ``FailedCell`` contract at the analysis
layer — a failed file becomes a typed :class:`FailedAnalysis` record
(error type, message, traceback) keyed like any report, and every
healthy capture still returns its numbers.
"""

import pytest

from repro.core import CongestionReport
from repro.frames import Trace
from repro.pcap import TruncatedPcapError, write_trace
from repro.pipeline import FailedAnalysis, run_batch

from ..conftest import ack, data


@pytest.fixture
def pcap_pair(tmp_path):
    """One clean pcap and one truncated mid-record."""
    rows = [
        data(1_000, src=10, dst=1, seq=0),
        ack(2_400, src=1, dst=10),
        data(11_000, src=10, dst=1, seq=1),
        ack(12_400, src=1, dst=10),
    ]
    good = tmp_path / "good.pcap"
    write_trace(Trace.from_rows(rows), good)
    raw = good.read_bytes()
    bad = tmp_path / "bad.pcap"
    bad.write_bytes(raw[: len(raw) - 7])
    return good, bad


def test_failure_captured_others_succeed(pcap_pair):
    good, bad = pcap_pair
    results = run_batch({"good": good, "bad": bad}, max_workers=1)
    assert isinstance(results["good"], CongestionReport)
    assert results["good"].summary.n_frames == 4
    failure = results["bad"]
    assert isinstance(failure, FailedAnalysis)
    assert failure.name == "bad"
    assert failure.error_type == "TruncatedPcapError"
    assert "truncated" in failure.error
    assert "TruncatedPcapError" in failure.traceback


def test_failure_records_preserve_order(pcap_pair):
    good, bad = pcap_pair
    results = run_batch([("bad", bad), ("good", good)], max_workers=1)
    assert list(results) == ["bad", "good"]


def test_on_error_raise_restores_old_behaviour(pcap_pair):
    good, bad = pcap_pair
    with pytest.raises(TruncatedPcapError):
        run_batch({"good": good, "bad": bad}, max_workers=1, on_error="raise")


def test_on_error_validated(pcap_pair):
    good, _ = pcap_pair
    with pytest.raises(ValueError, match="on_error"):
        run_batch({"good": good}, on_error="ignore")


def test_capture_in_parallel_pool(pcap_pair):
    """FailedAnalysis records pickle across the process pool."""
    good, bad = pcap_pair
    results = run_batch(
        {"good": good, "bad": bad}, max_workers=2, mode="process"
    )
    assert isinstance(results["good"], CongestionReport)
    assert isinstance(results["bad"], FailedAnalysis)
    assert results["bad"].error_type == "TruncatedPcapError"


def test_missing_file_is_captured_too(tmp_path, pcap_pair):
    good, _ = pcap_pair
    results = run_batch(
        {"good": good, "ghost": tmp_path / "nope.pcap"}, max_workers=1
    )
    assert isinstance(results["good"], CongestionReport)
    assert results["ghost"].error_type == "FileNotFoundError"


def test_failed_analysis_source_is_recorded(pcap_pair):
    _, bad = pcap_pair
    results = run_batch({"bad": bad}, max_workers=1)
    assert results["bad"].source == str(bad)
