"""Incremental == batch: the serve layer's numerical contract.

The daemon answers ``/feeds/<id>/report`` from
``PipelineExecutor.snapshot()`` while frames are still arriving.  These
tests pin the property that makes that answer trustworthy: after
feeding chunks ``c1..ck``, a snapshot is field-for-field identical to a
batch ``run_all`` over exactly those chunks — for every library
scenario, for a real pcap file, and down to one-frame segments.
"""

import pytest

from repro.core import analyze_trace
from repro.frames import Trace
from repro.pcap import write_trace
from repro.pipeline import (
    DEFAULT_CONSUMERS,
    ROSTER_CONSUMERS,
    PipelineExecutor,
    UnsortedStreamError,
    assemble_report,
    create_consumers,
    pcap_chunks,
    run_all,
    trace_chunks,
)
from repro.sim import available_scenarios, build_scenario

from ..conftest import data
from .test_equivalence import assert_reports_equal


def make_executor(roster=None, name="inc"):
    names = DEFAULT_CONSUMERS + (ROSTER_CONSUMERS if roster is not None else ())
    return PipelineExecutor(create_consumers(names), name=name, roster=roster)


def snapshot_report(executor, name="inc"):
    return assemble_report(executor.snapshot(), name=name)


def assert_prefix_equivalence(chunks, roster=None):
    """Every snapshot prefix must equal the batch run over that prefix."""
    executor = make_executor(roster)
    for k, chunk in enumerate(chunks, start=1):
        executor.feed(chunk)
        incremental = snapshot_report(executor)
        batch = run_all(iter(chunks[:k]), roster, name="inc")
        assert_reports_equal(batch, incremental)
    final = assemble_report(executor.close(), name="inc")
    assert_reports_equal(run_all(iter(chunks), roster, name="inc"), final)


@pytest.mark.parametrize("scenario", available_scenarios())
def test_every_library_scenario_prefixwise(scenario):
    """All library scenarios: snapshot after each chunk == batch prefix."""
    built = build_scenario(scenario, duration_s=2)
    chunks = list(built.stream(chunk_frames=256))
    assert len(chunks) >= 2, "need multiple prefixes to make this meaningful"
    assert_prefix_equivalence(chunks, built.roster)


def test_pcap_file_prefixwise(small_scenario, tmp_path):
    """A real pcap read back in chunks: every prefix snapshot matches."""
    path = tmp_path / "capture.pcap"
    write_trace(small_scenario.trace, path)
    chunks = list(pcap_chunks(path, chunk_frames=1024))
    assert len(chunks) >= 3
    assert_prefix_equivalence(chunks)


def test_one_frame_chunks(exchange_trace, tiny_roster):
    """Degenerate chunking: one frame per feed() still matches batch."""
    chunks = list(trace_chunks(exchange_trace, chunk_frames=1))
    assert all(len(c) == 1 for c in chunks)
    assert_prefix_equivalence(chunks, tiny_roster)


def test_close_matches_analyze_trace(small_scenario):
    """The incremental path lands on the same report as repro.core."""
    trace, roster = small_scenario.trace, small_scenario.roster
    executor = make_executor(roster, name="scenario")
    for chunk in trace_chunks(trace, chunk_frames=513):
        executor.feed(chunk)
    report = assemble_report(executor.close(), name="scenario")
    assert_reports_equal(analyze_trace(trace, roster, name="scenario"), report)


def test_snapshot_does_not_disturb_the_stream(small_scenario):
    """Snapshotting mid-stream must not change the final answer."""
    chunks = list(trace_chunks(small_scenario.trace, chunk_frames=700))
    noisy = make_executor()
    for chunk in chunks:
        noisy.feed(chunk)
        noisy.snapshot()      # observe constantly
        noisy.snapshot()
    quiet = make_executor()
    for chunk in chunks:
        quiet.feed(chunk)
    assert_reports_equal(
        assemble_report(quiet.close(), name="inc"),
        assemble_report(noisy.close(), name="inc"),
    )


def test_snapshot_on_fresh_executor_is_empty_report():
    executor = make_executor()
    report = snapshot_report(executor)
    assert_reports_equal(run_all(Trace.empty(), name="inc"), report)
    assert report.summary.n_frames == 0


def test_snapshot_after_close_returns_final_results():
    executor = make_executor()
    executor.feed(Trace.from_rows([data(1_000, src=10, dst=1)]))
    closed = executor.close()
    assert executor.snapshot() is closed
    assert executor.close() is closed  # close() is idempotent too


def test_feed_after_close_raises():
    executor = make_executor()
    executor.close()
    with pytest.raises(RuntimeError, match="closed"):
        executor.feed(Trace.from_rows([data(1_000, src=10, dst=1)]))


def test_reset_reuses_executor(exchange_trace, tiny_roster):
    """reset() gives a pristine stream; two passes agree exactly."""
    executor = make_executor(tiny_roster)
    chunks = list(trace_chunks(exchange_trace, chunk_frames=3))
    for chunk in chunks:
        executor.feed(chunk)
    first = assemble_report(executor.close(), name="inc")
    executor.reset()
    assert not executor.closed
    assert executor.frames_fed == 0
    for chunk in chunks:
        executor.feed(chunk)
    second = assemble_report(executor.close(), name="inc")
    assert_reports_equal(first, second)


def test_empty_segment_is_a_noop():
    executor = make_executor()
    assert executor.feed(Trace.empty()) == 0
    executor.feed(Trace.from_rows([data(5_000, src=10, dst=1)]))
    assert executor.feed(Trace.empty()) == 0
    assert executor.frames_fed == 1


def test_unsorted_segment_rejected():
    executor = make_executor()
    backwards = Trace.from_rows(
        [data(9_000, src=10, dst=1), data(1_000, src=11, dst=1)]
    )
    with pytest.raises(UnsortedStreamError):
        executor.feed(backwards)


def test_overlapping_segments_rejected():
    executor = make_executor()
    executor.feed(Trace.from_rows([data(10_000, src=10, dst=1)]))
    with pytest.raises(UnsortedStreamError, match="non-overlapping"):
        executor.feed(Trace.from_rows([data(9_999, src=11, dst=1)]))


def test_equal_boundary_timestamps_allowed():
    """A segment may start exactly at the previous segment's end time."""
    executor = make_executor()
    executor.feed(Trace.from_rows([data(10_000, src=10, dst=1)]))
    executor.feed(Trace.from_rows([data(10_000, src=11, dst=1)]))
    report = assemble_report(executor.close(), name="inc")
    assert report.summary.n_frames == 2


def test_frames_fed_counts_every_row(small_scenario):
    chunks = list(trace_chunks(small_scenario.trace, chunk_frames=333))
    executor = make_executor()
    total = 0
    for chunk in chunks:
        total += executor.feed(chunk)
    assert total == len(small_scenario.trace)
    assert executor.frames_fed == total
