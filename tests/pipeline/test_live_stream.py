"""Live sniffer streaming: field-identical to the buffered path.

The contract of the sim→pipeline boundary: a scenario streamed live
through :func:`repro.pipeline.scenario_chunks` (bounded memory, no
full-trace materialisation) produces a :class:`CongestionReport`
field-identical to the buffered ``run_scenario`` + ``analyze_trace``
path, down to small chunk sizes and drain windows.
"""

import pytest

from repro.core import analyze_trace
from repro.frames import Trace
from repro.pipeline import run_all, scenario_chunks
from repro.sim import ScenarioBuilder, stream_scenario

from .test_equivalence import assert_reports_equal


@pytest.mark.parametrize("chunk_frames", [37, 1024])
def test_streamed_scenario_report_matches_buffered(
    small_scenario, chunk_frames
):
    """Same config, one buffered run vs one live-streamed run: every
    report field identical."""
    config = small_scenario.config
    buffered = analyze_trace(
        small_scenario.trace, small_scenario.roster, name="live"
    )
    streamed = run_all(
        scenario_chunks(config, chunk_frames=chunk_frames),
        roster=small_scenario.roster,
        name="live",
        chunk_frames=chunk_frames,
    )
    assert_reports_equal(buffered, streamed)
    assert buffered.headline() == streamed.headline()


@pytest.mark.parametrize("window_s", [0.25, 2.0])
def test_drain_window_size_is_invisible(small_scenario, window_s):
    """The drain cadence is an implementation detail: any window
    produces the same stream."""
    config = small_scenario.config
    reference = small_scenario.trace.sorted_by_time()
    streamed = Trace.concatenate(
        list(stream_scenario(config, chunk_frames=256, window_s=window_s))
    )
    assert streamed == reference


def test_streamed_run_holds_no_full_trace(small_scenario):
    """Bounded memory, verified structurally: ground truth stays empty
    and sniffer buffers never approach the full capture."""
    config = small_scenario.config
    built = ScenarioBuilder(config).build()
    peak_buffered = 0
    total = 0
    for chunk in built.stream(chunk_frames=256, window_s=0.5):
        total += len(chunk)
        peak_buffered = max(
            peak_buffered, sum(s.frames_buffered for s in built.sniffers)
        )
    assert total == len(small_scenario.trace)
    assert len(built.medium.ground_truth) == 0
    assert peak_buffered < total  # never the whole run in memory
    assert sum(s.frames_buffered for s in built.sniffers) == 0


def test_multi_channel_merge_order_preserved():
    """Multiple sniffers: the streamed merge reproduces the stable
    concatenate-then-sort order of the buffered path."""
    from repro.sim import ConstantRate, ScenarioConfig, run_scenario

    config = ScenarioConfig(
        n_stations=6,
        n_aps=3,
        channels=(1, 6, 11),
        duration_s=4.0,
        seed=17,
        uplink=ConstantRate(10.0),
        downlink=ConstantRate(12.0),
    )
    buffered = run_scenario(config)
    streamed = Trace.concatenate(
        list(stream_scenario(config, chunk_frames=128))
    )
    assert streamed == buffered.trace.sorted_by_time()
    report_buffered = analyze_trace(buffered.trace, buffered.roster, name="mc")
    report_streamed = run_all(
        stream_scenario(config, chunk_frames=128),
        roster=buffered.roster,
        name="mc",
    )
    assert_reports_equal(report_buffered, report_streamed)
