"""The pipeline's hard contract: run_all == analyze_trace, number for number.

Every consumer must reproduce its wrapped ``repro.core`` analysis
exactly, for any chunk size — including chunk boundaries that split
DATA-ACK pairs, retry chains and one-second intervals.
"""

import numpy as np
import pytest

from repro.core import analyze_trace
from repro.frames import Trace
from repro.pipeline import run_all, trace_chunks

from ..conftest import ack, beacon, cts, data, rts


def assert_binned_equal(a, b, label=""):
    assert np.array_equal(a.utilization, b.utilization), label
    assert np.allclose(a.value, b.value, equal_nan=True), label
    assert np.array_equal(a.count, b.count), label


def assert_reports_equal(a, b):
    """Field-by-field comparison of two CongestionReports."""
    assert a.summary == b.summary
    assert a.utilization.start_us == b.utilization.start_us
    assert np.allclose(a.utilization.percent, b.utilization.percent)
    assert a.thresholds == b.thresholds
    assert a.level_occupancy == b.level_occupancy
    assert_binned_equal(
        a.throughput.throughput_mbps, b.throughput.throughput_mbps, "throughput"
    )
    assert_binned_equal(
        a.throughput.goodput_mbps, b.throughput.goodput_mbps, "goodput"
    )
    assert_binned_equal(a.rts_cts.rts, b.rts_cts.rts, "rts")
    assert_binned_equal(a.rts_cts.cts, b.rts_cts.cts, "cts")
    for rate in a.busytime_share.rates:
        assert_binned_equal(
            a.busytime_share[rate], b.busytime_share[rate], f"share {rate}"
        )
        assert_binned_equal(
            a.bytes_per_rate[rate], b.bytes_per_rate[rate], f"bytes {rate}"
        )
        assert_binned_equal(a.reception[rate], b.reception[rate], f"recv {rate}")
    assert a.transmissions.names == b.transmissions.names
    for name in a.transmissions.names:
        assert_binned_equal(
            a.transmissions[name], b.transmissions[name], f"tx {name}"
        )
    assert a.delays.names == b.delays.names
    for name in a.delays.names:
        assert_binned_equal(a.delays[name], b.delays[name], f"delay {name}")
    ua, ub = a.unrecorded, b.unrecorded
    assert ua.captured_frames == ub.captured_frames
    assert ua.missing_data == ub.missing_data
    assert ua.missing_rts == ub.missing_rts
    assert ua.missing_cts == ub.missing_cts
    assert np.array_equal(ua.missing_data_src, ub.missing_data_src)
    assert np.array_equal(ua.missing_data_dst, ub.missing_data_dst)
    for attr in ("ap_activity", "unrecorded_per_ap", "user_series"):
        assert (getattr(a, attr) is None) == (getattr(b, attr) is None), attr
    if a.ap_activity is not None:
        assert a.ap_activity.total_frames == b.ap_activity.total_frames
        for col in ("ap", "rank", "frames"):
            assert np.array_equal(
                a.ap_activity.table.column(col), b.ap_activity.table.column(col)
            ), col
    if a.unrecorded_per_ap is not None:
        for col in ("ap", "captured", "missing"):
            assert np.array_equal(
                a.unrecorded_per_ap.column(col), b.unrecorded_per_ap.column(col)
            ), col
        assert np.allclose(
            a.unrecorded_per_ap.column("unrecorded_percent"),
            b.unrecorded_per_ap.column("unrecorded_percent"),
        )
    if a.user_series is not None:
        assert np.array_equal(
            a.user_series.column("interval"), b.user_series.column("interval")
        )
        assert np.array_equal(
            a.user_series.column("users"), b.user_series.column("users")
        )


@pytest.mark.parametrize("chunk_frames", [37, 512, 1_000_000])
def test_run_all_matches_analyze_trace(small_scenario, chunk_frames):
    """Simulated capture: every report field identical, any chunking."""
    trace, roster = small_scenario.trace, small_scenario.roster
    batch = analyze_trace(trace, roster, name="scenario")
    streamed = run_all(
        trace, roster, name="scenario", chunk_frames=chunk_frames
    )
    assert_reports_equal(batch, streamed)
    assert batch.headline() == streamed.headline()


@pytest.mark.parametrize("chunk_frames", [1, 2, 3, 100])
def test_tiny_exchange_trace(exchange_trace, tiny_roster, chunk_frames):
    """Chunk sizes down to one frame: boundary pairs must still match."""
    batch = analyze_trace(exchange_trace, tiny_roster, name="tiny")
    streamed = run_all(
        exchange_trace, tiny_roster, name="tiny", chunk_frames=chunk_frames
    )
    assert_reports_equal(batch, streamed)


def test_without_roster(small_scenario):
    """Roster-less runs skip the Fig-4 analyses, like analyze_trace."""
    batch = analyze_trace(small_scenario.trace, name="bare")
    streamed = run_all(small_scenario.trace, name="bare", chunk_frames=999)
    assert_reports_equal(batch, streamed)
    assert streamed.ap_activity is None
    assert streamed.unrecorded_per_ap is None
    assert streamed.user_series is None


def test_empty_trace():
    batch = analyze_trace(Trace.empty(), name="empty")
    streamed = run_all(Trace.empty(), name="empty")
    assert_reports_equal(batch, streamed)


def test_pre_chunked_segment_stream(small_scenario):
    """An iterable of sorted segments (a live feed) matches the batch run."""
    trace = small_scenario.trace.sorted_by_time()
    segments = list(trace_chunks(trace, chunk_frames=777))
    batch = analyze_trace(trace, name="feed")
    streamed = run_all(iter(segments), name="feed")
    assert_reports_equal(batch, streamed)


def test_unrecorded_rules_across_boundaries(tiny_roster):
    """Lone ACK / lone CTS / skipped CTS land on chunk edges."""
    rows = [
        beacon(0, src=1),
        ack(1_000, src=1, dst=10),          # lone ACK: missing DATA from 10
        rts(5_000, src=11, dst=1),
        data(5_600, src=11, dst=1, seq=3),  # RTS->DATA: missing CTS
        ack(7_000, src=1, dst=11),
        cts(9_000, src=1, dst=11),          # lone CTS: missing RTS
        data(10_000, src=10, dst=1, seq=4),
        ack(11_000, src=1, dst=10),
    ]
    trace = Trace.from_rows(rows)
    batch = analyze_trace(trace, tiny_roster, name="rules")
    for chunk_frames in (1, 2, 3, 5, 8):
        streamed = run_all(
            trace, tiny_roster, name="rules", chunk_frames=chunk_frames
        )
        assert_reports_equal(batch, streamed)
    assert batch.unrecorded.missing_data == 1
    assert batch.unrecorded.missing_rts == 1
    assert batch.unrecorded.missing_cts == 1
