"""Doctest pass over pipeline/builder/campaign/api docstrings.

The examples in ``repro.pipeline``, ``repro.sim.builder``,
``repro.campaign`` and ``repro.api`` docstrings are part of the
documentation contract (README and ARCHITECTURE link to them); this
keeps them executable.
"""

import doctest

import pytest

import repro.api._toml
import repro.api.experiment
import repro.api.spec
import repro.campaign.grid
import repro.pipeline.accumulate
import repro.pipeline.executor
import repro.pipeline.registry
import repro.pipeline.stream
import repro.sim.builder


@pytest.mark.parametrize(
    "module",
    [
        repro.api._toml,
        repro.api.experiment,
        repro.api.spec,
        repro.pipeline.accumulate,
        repro.pipeline.executor,
        repro.pipeline.registry,
        repro.pipeline.stream,
        repro.sim.builder,
        repro.campaign.grid,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"


def test_doctests_exist_somewhere():
    """At least the worked examples must stay in the docstrings."""
    total = sum(
        doctest.testmod(m, verbose=False).attempted
        for m in (
            repro.pipeline.accumulate,
            repro.pipeline.executor,
            repro.pipeline.stream,
        )
    )
    assert total >= 3
