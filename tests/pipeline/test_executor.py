"""Executor mechanics: chunking, registry, custom consumers, batch mode."""

import numpy as np
import pytest

from repro.frames import FrameType, Trace
from repro.pipeline import (
    Consumer,
    PipelineExecutor,
    SecondAccumulator,
    available_consumers,
    consumer_factory,
    create_consumers,
    register_consumer,
    run_all,
    run_batch,
    run_consumers,
    trace_chunks,
)

from ..conftest import ack, beacon, data


def _trace(n=10, spacing_us=100_000):
    return Trace.from_rows(
        [data(i * spacing_us, src=10, dst=1, seq=i) for i in range(n)]
    )


class TestTraceChunks:
    def test_covers_all_rows_in_order(self):
        trace = _trace(10)
        chunks = list(trace_chunks(trace, chunk_frames=4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        merged = np.concatenate([c.time_us for c in chunks])
        assert np.array_equal(merged, trace.time_us)

    def test_sorts_unsorted_input_once(self):
        rows = [data(t, src=10, dst=1) for t in (5_000, 1_000, 3_000)]
        chunks = list(trace_chunks(Trace.from_rows(rows), chunk_frames=2))
        merged = np.concatenate([c.time_us for c in chunks])
        assert np.array_equal(merged, np.array([1_000, 3_000, 5_000]))

    def test_views_not_copies(self):
        trace = _trace(8)
        chunk = next(trace_chunks(trace, chunk_frames=4))
        assert chunk.time_us.base is not None  # numpy view, not a copy

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(trace_chunks(_trace(), chunk_frames=0))


class TestSecondAccumulator:
    def test_counts_and_weights(self):
        acc = SecondAccumulator()
        acc.add(np.array([0, 0, 3]))
        acc.add(np.array([3]), weights=np.array([2.5]))
        assert np.allclose(acc.totals(5), [2.0, 0.0, 0.0, 3.5, 0.0])

    def test_two_dimensional(self):
        acc = SecondAccumulator(width=2)
        acc.add(np.array([0, 1, 1]), cols=np.array([0, 1, 1]))
        totals = acc.totals(2)
        assert totals.shape == (2, 2)
        assert np.allclose(totals, [[1.0, 0.0], [0.0, 2.0]])

    def test_truncates_and_pads(self):
        acc = SecondAccumulator()
        acc.add(np.array([7]))
        assert len(acc.totals(3)) == 3
        assert acc.totals(10)[7] == 1.0


class TestRegistry:
    def test_default_consumers_registered(self):
        names = available_consumers()
        for expected in ("summary", "utilization", "throughput", "delays"):
            assert expected in names

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown consumer"):
            consumer_factory("no-such-metric")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_consumer("summary", lambda: None)

    def test_create_consumers_fresh_instances(self):
        a, b = create_consumers(["summary"]), create_consumers(["summary"])
        assert a[0] is not b[0]


class FrameCounter(Consumer):
    """Minimal custom consumer: total frames and beacon count."""

    name = "frame_counter"
    needs_ack_match = False  # exercises the executor's skip paths
    needs_cbt = False

    def start(self, ctx):
        self.total = 0
        self.beacons = 0

    def consume(self, chunk):
        self.total += len(chunk)
        self.beacons += int(
            np.count_nonzero(chunk.trace.ftype == int(FrameType.BEACON))
        )

    def finalize(self, ctx, deps):
        return {"total": self.total, "beacons": self.beacons}


class TestCustomConsumers:
    def test_custom_consumer_plugs_in(self):
        rows = [beacon(0, src=1)] + [
            data(1_000 + i * 2_000, src=10, dst=1, seq=i) for i in range(5)
        ]
        executor = PipelineExecutor([FrameCounter()], chunk_frames=2)
        results = executor.run(Trace.from_rows(rows))
        assert results["frame_counter"] == {"total": 6, "beacons": 1}

    def test_registered_custom_consumer_via_run_consumers(self, monkeypatch):
        from repro.pipeline import registry

        # setitem is reverted on teardown, so the global registry stays clean.
        monkeypatch.setitem(registry._FACTORIES, "frame_counter", FrameCounter)
        results = run_consumers(_trace(6), ["frame_counter"])
        assert results["frame_counter"]["total"] == 6
        assert "frame_counter" in registry.available_consumers()

    def test_missing_dependency_rejected(self):
        class Needy(Consumer):
            name = "needy"
            requires = ("not-there",)

        with pytest.raises(ValueError, match="requires"):
            PipelineExecutor([Needy()])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PipelineExecutor([FrameCounter(), FrameCounter()])


class TestStreamValidation:
    def test_unsorted_segment_rejected(self):
        bad = Trace.from_rows([data(5_000, 10, 1), data(1_000, 10, 1)])
        executor = PipelineExecutor([FrameCounter()])
        with pytest.raises(ValueError, match="time-sorted"):
            executor.run(iter([bad]))

    def test_overlapping_segments_rejected(self):
        first = Trace.from_rows([data(0, 10, 1), data(9_000, 10, 1)])
        second = Trace.from_rows([data(1_000, 10, 1)])
        executor = PipelineExecutor([FrameCounter()])
        with pytest.raises(ValueError, match="ordered"):
            executor.run(iter([first, second]))

    def test_empty_segments_skipped(self):
        stream = [Trace.empty(), _trace(4), Trace.empty()]
        results = run_consumers(iter(stream), ["summary"])
        assert results["summary"].n_frames == 4

    def test_ack_match_across_segment_gap(self):
        """A DATA ending one segment pairs with the ACK opening the next."""
        first = Trace.from_rows([data(0, src=10, dst=1, seq=1)])
        second = Trace.from_rows([ack(1_500, src=1, dst=10)])
        results = run_consumers(iter([first, second]), ["reception"])
        reception = results["reception"]
        assert sum(s.value.sum() for s in reception.per_rate.values()) > 0


class TestPcapSources:
    def test_unsorted_pcap_falls_back_to_load_and_sort(self, tmp_path):
        """A pcap with records out of time order must still analyze,
        matching the batch path (regression: the streaming reader used
        to crash on it)."""
        import numpy as np

        from repro.core import analyze_trace
        from repro.pcap import read_trace, write_trace

        rng = np.random.default_rng(5)
        times = rng.permutation(50) * 100_000
        rows = [data(int(t), src=10, dst=1, seq=i) for i, t in enumerate(times)]
        path = tmp_path / "unsorted.pcap"
        write_trace(Trace.from_rows(rows), path)  # preserves row order

        streamed = run_all(str(path), name="u", chunk_frames=7)
        batch = analyze_trace(read_trace(path), name="u")
        assert streamed.summary == batch.summary
        assert np.allclose(
            streamed.utilization.percent, batch.utilization.percent
        )

    def test_mildly_disordered_pcap_streams(self, tmp_path):
        """Disorder within one batch is absorbed by the per-batch sort
        without the load-and-sort fallback."""
        from repro.pipeline import pcap_chunks
        from repro.pcap import write_trace

        rows = [
            data(200, src=10, dst=1, seq=0),
            data(100, src=10, dst=1, seq=1),  # swapped pair
            data(900_000, src=10, dst=1, seq=2),
        ]
        path = tmp_path / "mild.pcap"
        write_trace(Trace.from_rows(rows), path)
        chunks = list(pcap_chunks(path, chunk_frames=10))
        assert len(chunks) == 1
        assert chunks[0].is_time_sorted()


class TestRunBatch:
    def test_mapping_input(self, small_scenario):
        trace = small_scenario.trace
        half = len(trace) // 2
        sorted_trace = trace.sorted_by_time()
        parts = {
            "first": sorted_trace.slice_rows(0, half),
            "second": sorted_trace.slice_rows(half, len(trace)),
        }
        reports = run_batch(parts, roster=small_scenario.roster, max_workers=2)
        assert list(reports) == ["first", "second"]
        for name, report in reports.items():
            assert report.name == name
        total = sum(r.summary.n_frames for r in reports.values())
        assert total == len(trace)

    def test_sequence_input_gets_default_names(self):
        reports = run_batch([_trace(5), _trace(7)])
        assert list(reports) == ["trace-0", "trace-1"]
        assert reports["trace-1"].summary.n_frames == 7

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate batch names"):
            run_batch([("day", _trace(5)), ("day", _trace(7))])

    def test_process_mode_on_paths(self, tmp_path, small_scenario):
        """Path sources default to a process pool; reports match."""
        from repro.pcap import write_trace

        trace = small_scenario.trace.sorted_by_time()
        half = len(trace) // 2
        paths = {}
        for name, part in (
            ("first", trace.slice_rows(0, half)),
            ("second", trace.slice_rows(half, len(trace))),
        ):
            p = tmp_path / f"{name}.pcap"
            write_trace(part, p)
            paths[name] = str(p)
        reports = run_batch(paths, max_workers=2)  # mode auto: process
        assert list(reports) == ["first", "second"]
        assert (
            reports["first"].summary.n_frames
            + reports["second"].summary.n_frames
            == len(trace)
        )
        with pytest.raises(ValueError, match="mode"):
            run_batch(paths, mode="fiber")

    def test_batch_matches_individual_runs(self, small_scenario):
        trace = small_scenario.trace
        solo = run_all(trace, name="day")
        batched = run_batch([("day", trace)], max_workers=4)["day"]
        assert solo.summary == batched.summary
        assert np.allclose(
            solo.utilization.percent, batched.utilization.percent
        )
        assert solo.thresholds == batched.thresholds
