"""ExperimentSpec: parsing, validation, serialization round-trips."""

import json

import pytest

from repro.api import ExperimentSpec, SpecError, load_spec
from repro.api._toml import dumps as toml_dumps

CAMPAIGN_TOML = """\
name = "study"
scenario = "ramp"
seeds = 2
analyses = ["utilization", "delays"]

[params]
duration_s = 4.0

[vary]
n_stations = [6, 10]

[run]
workers = 2
store = "campaign-store"
resume = false
"""


class TestParsing:
    def test_toml_campaign(self):
        spec = ExperimentSpec.from_toml(CAMPAIGN_TOML)
        assert spec.scenario == "ramp"
        assert spec.mode == "campaign"
        assert spec.seeds == 2
        assert spec.params == (("duration_s", 4.0),)
        assert spec.vary == (("n_stations", (6, 10)),)
        assert spec.analyses == ("utilization", "delays")
        assert spec.workers == 2
        assert spec.store == "campaign-store"
        assert spec.resume is False

    def test_single_mode(self):
        spec = ExperimentSpec.from_toml('scenario = "day"\n')
        assert spec.mode == "single"
        assert spec.seeds is None

    def test_analysis_mode(self):
        spec = ExperimentSpec.from_mapping({"pcaps": ["a.pcap", "b.pcap"]})
        assert spec.mode == "analysis"
        assert spec.pcaps == ("a.pcap", "b.pcap")

    def test_single_pcap_string(self):
        assert ExperimentSpec.from_mapping({"pcaps": "a.pcap"}).pcaps == ("a.pcap",)

    def test_seeds_list(self):
        spec = ExperimentSpec.from_mapping({"scenario": "ramp", "seeds": [7, 11]})
        assert spec.seeds == (7, 11)
        assert spec.mode == "campaign"

    def test_json_equivalent(self):
        toml_spec = ExperimentSpec.from_toml(CAMPAIGN_TOML)
        json_spec = ExperimentSpec.from_json(json.dumps(toml_spec.to_mapping()))
        assert json_spec == toml_spec

    def test_from_file_toml_and_json(self, tmp_path):
        toml_path = tmp_path / "s.toml"
        toml_path.write_text(CAMPAIGN_TOML)
        spec = load_spec(toml_path)
        json_path = tmp_path / "s.json"
        json_path.write_text(spec.to_json())
        assert load_spec(json_path) == spec

    def test_from_file_bad_extension(self, tmp_path):
        path = tmp_path / "s.yaml"
        path.write_text("scenario: ramp")
        with pytest.raises(SpecError, match="unsupported spec extension"):
            load_spec(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read spec"):
            load_spec(tmp_path / "nope.toml")

    def test_invalid_toml(self):
        with pytest.raises(SpecError, match="invalid TOML"):
            ExperimentSpec.from_toml("scenario = [unterminated")


class TestStrictKeys:
    def test_unknown_top_key_suggests(self):
        with pytest.raises(SpecError, match="did you mean 'vary'"):
            ExperimentSpec.from_mapping({"scenario": "ramp", "varry": {}})

    def test_unknown_run_key_suggests(self):
        with pytest.raises(SpecError, match="did you mean 'workers'"):
            ExperimentSpec.from_mapping(
                {"scenario": "ramp", "run": {"worker": 2}}
            )

    def test_vary_scalar_rejected(self):
        with pytest.raises(SpecError, match="must be a list"):
            ExperimentSpec.from_mapping(
                {"scenario": "ramp", "vary": {"n_stations": 10}}
            )

    def test_seeds_bool_rejected(self):
        with pytest.raises(SpecError, match="'seeds'"):
            ExperimentSpec.from_mapping({"scenario": "ramp", "seeds": True})

    def test_source_names_file_in_error(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('scenrio = "ramp"\n')
        with pytest.raises(SpecError, match="bad.toml"):
            load_spec(path)


class TestValidate:
    def test_both_sources_rejected(self):
        spec = ExperimentSpec.from_mapping(
            {"scenario": "ramp", "pcaps": ["a.pcap"]}
        )
        with pytest.raises(SpecError, match="not both"):
            spec.validate()

    def test_no_source_rejected(self):
        with pytest.raises(SpecError, match="needs a source"):
            ExperimentSpec().validate()

    def test_unknown_scenario_suggests(self):
        spec = ExperimentSpec.from_mapping({"scenario": "rampp"})
        with pytest.raises(SpecError, match="did you mean 'ramp'"):
            spec.validate()

    def test_unknown_param_suggests(self):
        spec = ExperimentSpec.from_mapping(
            {"scenario": "ramp", "vary": {"n_statoins": [4]}}
        )
        with pytest.raises(SpecError, match="did you mean 'n_stations'"):
            spec.validate()

    def test_unknown_analysis_suggests(self):
        spec = ExperimentSpec.from_mapping(
            {"scenario": "ramp", "analyses": ["utilzation"]}
        )
        with pytest.raises(SpecError, match="did you mean 'utilization'"):
            spec.validate()

    def test_param_vary_overlap_rejected(self):
        spec = ExperimentSpec.from_mapping(
            {
                "scenario": "ramp",
                "params": {"n_stations": 4},
                "vary": {"n_stations": [4, 6]},
            }
        )
        with pytest.raises(SpecError, match="both"):
            spec.validate()

    def test_store_needs_campaign(self):
        spec = ExperimentSpec.from_mapping(
            {"scenario": "ramp", "run": {"store": "dir"}}
        )
        with pytest.raises(SpecError, match="needs a campaign"):
            spec.validate()

    def test_pcaps_with_vary_rejected(self):
        spec = ExperimentSpec.from_mapping(
            {"pcaps": ["a.pcap"], "vary": {"n_stations": [4]}}
        )
        with pytest.raises(SpecError, match="pcap analysis"):
            spec.validate()

    def test_valid_campaign_passes(self):
        ExperimentSpec.from_toml(CAMPAIGN_TOML).validate()


class TestSerialization:
    def test_toml_round_trip(self):
        spec = ExperimentSpec.from_toml(CAMPAIGN_TOML)
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec

    def test_json_round_trip(self):
        spec = ExperimentSpec.from_toml(CAMPAIGN_TOML)
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_save_round_trip(self, tmp_path):
        spec = ExperimentSpec.from_toml(CAMPAIGN_TOML)
        assert load_spec(spec.save(tmp_path / "x.toml")) == spec
        assert load_spec(spec.save(tmp_path / "x.json")) == spec

    def test_hash_stable_and_distinct(self):
        a = ExperimentSpec.from_toml(CAMPAIGN_TOML)
        b = ExperimentSpec.from_toml(CAMPAIGN_TOML)
        assert a.hash == b.hash
        c = ExperimentSpec.from_mapping({"scenario": "day"})
        assert a.hash != c.hash

    def test_live_object_fails_toml_loudly(self):
        from repro.sim import ConstantRate

        spec = ExperimentSpec(
            scenario="ramp", params=(("uplink", ConstantRate(3.0)),)
        )
        with pytest.raises(TypeError, match="not TOML-serializable"):
            spec.to_toml()

    def test_with_options_none_keeps(self):
        spec = ExperimentSpec.from_toml(CAMPAIGN_TOML)
        assert spec.with_options(workers=None) == spec
        assert spec.with_options(workers=8).workers == 8


class TestTomlEmitter:
    def test_escaping_and_types(self):
        import tomllib

        data = {
            "name": 'quote " backslash \\ unicode é',
            "flag": True,
            "n": 3,
            "x": 1.5,
            "xs": [1, 2, 3],
            "table": {"a": 1, "nested key": "v"},
        }
        assert tomllib.loads(toml_dumps(data)) == data

    def test_non_finite_float_rejected(self):
        with pytest.raises(TypeError, match="non-finite"):
            toml_dumps({"x": float("nan")})


class TestPcapExistence:
    def test_missing_pcap_rejected_at_validate(self, tmp_path):
        spec = ExperimentSpec.from_mapping(
            {"pcaps": [str(tmp_path / "nope.pcap")]}
        )
        with pytest.raises(SpecError, match="capture not found"):
            spec.validate()

    def test_existing_pcap_passes(self, tmp_path):
        path = tmp_path / "t.pcap"
        path.write_bytes(b"")
        ExperimentSpec.from_mapping({"pcaps": [str(path)]}).validate()
