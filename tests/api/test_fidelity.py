"""Fidelity plumbing: spec key → grid → cells → store keys → engine.

The ``fidelity`` knob must flow from every front door (TOML/JSON spec
files, the fluent ``Experiment`` builder, the campaign grid) down to
``build_scenario`` — and into the content-addressed store key, so fast
and default results never answer for each other.  Cells *without* a
fidelity keep their legacy names and keys byte-identical.
"""

import pytest

from repro.api import Experiment, ExperimentSpec, SpecError
from repro.campaign import ParameterGrid
from repro.campaign.grid import CampaignCell
from repro.campaign.store import cell_key

FAST_TOML = (
    'scenario = "uniform"\n'
    'seeds = 2\n'
    'fidelity = "fast"\n'
    "[vary]\n"
    "n_stations = [3, 4]\n"
)


class TestSpecKey:
    def test_toml_round_trip(self):
        spec = ExperimentSpec.from_toml(FAST_TOML)
        assert spec.fidelity == "fast"
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec

    def test_json_round_trip(self):
        spec = ExperimentSpec.from_toml(FAST_TOML)
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_default_fidelity_omitted_from_serialization(self):
        spec = ExperimentSpec.from_toml('scenario = "uniform"\n')
        assert spec.fidelity is None
        assert "fidelity" not in spec.to_mapping()

    def test_typo_gets_did_you_mean(self):
        spec = ExperimentSpec.from_toml(
            'scenario = "uniform"\nfidelity = "fsat"\n'
        )
        with pytest.raises(SpecError, match="did you mean 'fast'"):
            spec.validate()

    def test_non_string_rejected(self):
        with pytest.raises(SpecError, match="fidelity"):
            ExperimentSpec.from_mapping({"scenario": "uniform", "fidelity": 2})

    def test_rejected_for_pcap_analysis(self, tmp_path):
        pcap = tmp_path / "x.pcap"
        pcap.write_bytes(b"")
        spec = ExperimentSpec(pcaps=(str(pcap),), fidelity="fast")
        with pytest.raises(SpecError, match="pcap analysis"):
            spec.validate()

    def test_valid_fast_spec_validates(self):
        ExperimentSpec.from_toml(FAST_TOML).validate()


class TestExperimentFluent:
    def test_fidelity_method_sets_spec(self):
        exp = Experiment.scenario("uniform").fidelity("fast")
        assert exp.spec().fidelity == "fast"

    def test_fluent_is_immutable(self):
        base = Experiment.scenario("uniform")
        base.fidelity("fast")
        assert base.spec().fidelity is None

    def test_cells_carry_fidelity(self):
        exp = (
            Experiment.scenario("uniform")
            .vary(n_stations=[3, 4])
            .seeds(2)
            .fidelity("fast")
        )
        cells = exp.cells()
        assert len(cells) == 4
        assert all(cell.fidelity == "fast" for cell in cells)
        assert all("fidelity=fast" in cell.name for cell in cells)


class TestGridAndCells:
    def test_grid_validates_fidelity_eagerly(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            ParameterGrid("uniform", seeds=1, fidelity="fsat")

    def test_extend_preserves_fidelity(self):
        grid = ParameterGrid(
            "uniform", axes={"n_stations": [3]}, seeds=1, fidelity="fast"
        )
        extended = grid.extend(seeds=2)
        assert extended.fidelity == "fast"
        assert all(cell.fidelity == "fast" for cell in extended.cells())

    def test_legacy_cell_name_unchanged_without_fidelity(self):
        cell = CampaignCell("uniform", (("n_stations", 3),), seed=1)
        assert cell.name == "uniform/n_stations=3/seed=1"

    def test_cell_name_includes_fidelity(self):
        cell = CampaignCell(
            "uniform", (("n_stations", 3),), seed=1, fidelity="fast"
        )
        assert cell.name == "uniform/n_stations=3/fidelity=fast/seed=1"

    def test_kwargs_exclude_fidelity(self):
        cell = CampaignCell(
            "uniform", (("n_stations", 3),), seed=1, fidelity="fast"
        )
        assert "fidelity" not in cell.kwargs


class TestStoreKeys:
    PARAMS = (("duration_s", 2.0), ("n_stations", 3))

    def test_keys_differ_between_fidelities(self):
        keys = {
            cell_key(
                CampaignCell("uniform", self.PARAMS, seed=0, fidelity=f),
                "salt",
            )
            for f in (None, "default", "fast")
        }
        assert len(keys) == 3

    def test_keys_stable_for_equal_cells(self):
        a = CampaignCell("uniform", self.PARAMS, seed=0, fidelity="fast")
        b = CampaignCell("uniform", self.PARAMS, seed=0, fidelity="fast")
        assert cell_key(a, "salt") == cell_key(b, "salt")


class TestEndToEnd:
    def test_fast_campaign_runs_and_stores(self, tmp_path):
        store = tmp_path / "store"
        result = (
            Experiment.scenario("uniform")
            .fix(duration_s=1.0, n_stations=3)
            .seeds(1)
            .fidelity("fast")
            .run(store_dir=store, workers=1)
        )
        assert not result.campaign.failed
        (cell,) = result.campaign.cells
        assert "fidelity=fast" in cell.name
        # Resuming the same grid answers from the store; the default-
        # fidelity grid finds nothing (distinct keys) and re-simulates.
        resumed = (
            Experiment.scenario("uniform")
            .fix(duration_s=1.0, n_stations=3)
            .seeds(1)
            .fidelity("fast")
            .run(store_dir=store, workers=1)
        )
        assert not resumed.campaign.failed

    def test_single_run_uses_fast_engine(self):
        result = (
            Experiment.scenario("uniform")
            .fix(duration_s=1.0, n_stations=3)
            .fidelity("fast")
            .run()
        )
        (report,) = result.reports.values()
        assert report.summary.n_frames > 0
