"""Experiment fluent builder: construction, routing, run semantics."""

import pytest

from repro.api import Experiment, ExperimentSpec, SpecError

TINY = dict(n_stations=3, duration_s=1.5)


@pytest.fixture(scope="module")
def tiny_pcap(tmp_path_factory):
    """A small real capture written to disk once per module."""
    from repro.pcap import write_trace
    from repro.sim import build_scenario

    path = tmp_path_factory.mktemp("api") / "tiny.pcap"
    write_trace(build_scenario("uniform", **TINY).run().trace, path)
    return str(path)


class TestFluentBuilding:
    def test_methods_return_new_instances(self):
        base = Experiment.scenario("ramp")
        varied = base.vary(n_stations=[4, 6])
        assert base.spec().vary == ()
        assert varied.spec().vary == (("n_stations", (4, 6)),)

    def test_fix_merges_and_overrides(self):
        exp = Experiment.scenario("ramp", duration_s=4.0).fix(
            duration_s=2.0, n_stations=4
        )
        assert dict(exp.spec().params) == {"duration_s": 2.0, "n_stations": 4}

    def test_vary_redeclared_axis_replaces(self):
        exp = Experiment.scenario("ramp").vary(n_stations=[4]).vary(
            n_stations=[6, 8]
        )
        assert exp.spec().vary == (("n_stations", (6, 8)),)

    def test_seeds_int_and_list(self):
        assert Experiment.scenario("ramp").seeds(3).spec().seeds == 3
        assert Experiment.scenario("ramp").seeds([7, 11]).spec().seeds == (7, 11)

    def test_cells_matches_hand_built_grid(self):
        from repro.campaign import ParameterGrid

        exp = (
            Experiment.scenario("ramp")
            .vary(n_stations=[4, 6])
            .seeds(2)
            .fix(duration_s=2.0)
        )
        grid = ParameterGrid(
            "ramp",
            axes={"n_stations": [4, 6]},
            seeds=2,
            fixed={"duration_s": 2.0},
        )
        assert exp.cells() == grid.cells()

    def test_cells_rejected_outside_campaign_mode(self):
        with pytest.raises(SpecError, match="no cells"):
            Experiment.scenario("ramp").cells()

    def test_from_spec_accepts_spec_mapping_and_path(self, tmp_path):
        spec = Experiment.scenario("ramp").seeds(2).spec()
        assert Experiment.from_spec(spec).spec() == spec
        assert Experiment.from_spec(spec.to_mapping()).spec() == spec
        path = spec.save(tmp_path / "s.toml")
        assert Experiment.from_spec(path).spec() == spec

    def test_pcaps_requires_paths(self):
        with pytest.raises(SpecError, match="at least one"):
            Experiment.pcaps()

    def test_validate_catches_typo(self):
        with pytest.raises(SpecError, match="did you mean"):
            Experiment.scenario("ramp", n_statoins=4).validate()


class TestSingleMode:
    def test_run_returns_full_report(self):
        result = Experiment.scenario("uniform", **TINY).run()
        assert result.mode == "single"
        assert result.report.summary.n_frames > 0
        assert result.report.name == "uniform"
        assert result.table()[0]["frames"] == result.report.summary.n_frames

    def test_named_sets_report_title(self):
        result = Experiment.scenario("uniform", **TINY).named("my-run").run()
        assert result.report.name == "my-run"

    def test_keep_trace_attaches_scenario_result(self):
        result = Experiment.scenario("uniform", **TINY).run(keep_trace=True)
        assert result.scenario_result is not None
        assert len(result.scenario_result.trace) == result.report.summary.n_frames

    def test_analyses_subset_returns_metrics(self):
        result = (
            Experiment.scenario("uniform", **TINY)
            .analyses("utilization", "delays")
            .run()
        )
        assert result.reports == {}
        assert sorted(result.metrics["uniform"]) == ["delays", "utilization"]

    def test_keep_trace_rejected_for_campaign(self):
        exp = Experiment.scenario("uniform", **TINY).seeds(2)
        with pytest.raises(ValueError, match="keep_trace"):
            exp.run(keep_trace=True)

    def test_provenance_fields(self):
        from repro.campaign import code_version_salt

        result = Experiment.scenario("uniform", **TINY).run()
        assert result.provenance["code_salt"] == code_version_salt()
        assert result.provenance["spec_hash"] == result.spec().hash
        assert result.provenance["mode"] == "single"


class TestAnalysisMode:
    def test_pcap_reports(self, tiny_pcap):
        result = Experiment.pcaps(tiny_pcap).run()
        assert result.mode == "analysis"
        assert result.report.summary.n_frames > 0
        assert result.sources == ((tiny_pcap, tiny_pcap),)

    def test_named_single_pcap(self, tiny_pcap):
        result = Experiment.pcap(tiny_pcap).named("session").run()
        assert list(result.reports) == ["session"]

    def test_duplicate_paths_get_distinct_names(self, tiny_pcap):
        result = Experiment.pcaps(tiny_pcap, tiny_pcap).run(workers=1)
        assert list(result.reports) == [tiny_pcap, f"{tiny_pcap}#2"]

    def test_subset_metrics(self, tiny_pcap):
        result = Experiment.pcaps(tiny_pcap).analyses("summary").run()
        assert list(result.metrics[tiny_pcap]) == ["summary"]


class TestCampaignMode:
    def test_campaign_runs_and_renders(self):
        result = (
            Experiment.scenario("ramp")
            .fix(duration_s=1.5)
            .vary(n_stations=[3, 4])
            .run(workers=1)
        )
        assert result.mode == "campaign"
        assert len(result.campaign.cells) == 2
        assert len(result.table()) == 2
        assert "ramp" in result.knees()
        text = result.render()
        assert "Campaign [ramp]" in text

    def test_run_overrides_store(self, tmp_path):
        exp = Experiment.scenario("ramp").fix(duration_s=1.5).vary(
            n_stations=[3]
        )
        first = exp.run(workers=1, store_dir=tmp_path / "store")
        assert first.campaign.dispatched == 1
        again = exp.run(workers=1, store_dir=tmp_path / "store")
        assert again.campaign.dispatched == 0
        assert again.campaign.store_hits == 1

    def test_keep_reports_populates_reports(self):
        result = (
            Experiment.scenario("ramp")
            .fix(duration_s=1.5)
            .vary(n_stations=[3])
            .keep_reports()
            .run(workers=1)
        )
        (name,) = result.reports
        assert name == "ramp/duration_s=1.5/n_stations=3/seed=0"

    def test_to_json_parses(self):
        import json

        result = (
            Experiment.scenario("ramp")
            .fix(duration_s=1.5)
            .vary(n_stations=[3])
            .run(workers=1)
        )
        payload = json.loads(result.to_json())
        assert payload["mode"] == "campaign"
        assert payload["spec"]["scenario"] == "ramp"
        assert len(payload["table"]) == 1
        assert payload["perf"]["cells"] == 1


class TestUniformScenario:
    def test_uniform_matches_bare_scenario_config(self):
        """The 'uniform' library entry == a hand-built ScenarioConfig
        (the old simulate-CLI construction), field for field."""
        from repro.sim import ConstantRate, ScenarioConfig, scenario_config

        via_library = scenario_config(
            "uniform",
            n_stations=4,
            n_aps=1,
            duration_s=2.0,
            seed=9,
            uplink_pps=6.0,
            downlink_pps=10.0,
            rate_algorithm="snr",
            rtscts_fraction=0.5,
            obstructed_fraction=0.0,
        )
        by_hand = ScenarioConfig(
            n_stations=4,
            n_aps=1,
            duration_s=2.0,
            seed=9,
            uplink=ConstantRate(6.0),
            downlink=ConstantRate(10.0),
            rate_algorithm="snr",
            rtscts_fraction=0.5,
            obstructed_fraction=0.0,
        )
        assert via_library == by_hand

    def test_uniform_accepts_config_overrides(self):
        from repro.sim import scenario_config

        config = scenario_config("uniform", room_width_m=50.0, **TINY)
        assert config.room_width_m == 50.0


class TestAnalysisSubsetWorkers:
    def test_subset_honors_worker_pool(self, tiny_pcap, tmp_path):
        """The analyses-subset branch parallelises like run_batch does
        (and a pool run equals a serial run)."""
        import shutil

        other = tmp_path / "copy.pcap"
        shutil.copy(tiny_pcap, other)
        exp = Experiment.pcaps(tiny_pcap, str(other)).analyses("summary")
        serial = exp.run(workers=1)
        pooled = exp.run(workers=2)
        assert sorted(serial.metrics) == sorted(pooled.metrics)
        for name in serial.metrics:
            assert (
                serial.metrics[name]["summary"].as_row()
                == pooled.metrics[name]["summary"].as_row()
            )


class TestAnalysisFailures:
    """A broken capture becomes a failure record, not an aborted run."""

    @pytest.fixture
    def broken_pcap(self, tiny_pcap, tmp_path):
        from pathlib import Path

        raw = Path(tiny_pcap).read_bytes()
        path = tmp_path / "broken.pcap"
        path.write_bytes(raw[: len(raw) - 11])
        return str(path)

    def test_failures_captured_alongside_reports(self, tiny_pcap, broken_pcap):
        result = Experiment.pcaps(tiny_pcap, broken_pcap).run(workers=1)
        assert list(result.reports) == [tiny_pcap]
        (failure,) = result.failures
        assert failure.name == broken_pcap
        assert failure.error_type == "TruncatedPcapError"

    def test_render_names_the_failure(self, tiny_pcap, broken_pcap):
        result = Experiment.pcaps(tiny_pcap, broken_pcap).run(workers=1)
        text = result.render()
        assert "analysis failed" in text
        assert "TruncatedPcapError" in text

    def test_to_json_lists_failed_captures(self, tiny_pcap, broken_pcap):
        import json

        result = Experiment.pcaps(tiny_pcap, broken_pcap).run(workers=1)
        payload = json.loads(result.to_json())
        (record,) = payload["failed_captures"]
        assert record["name"] == broken_pcap
        assert record["error_type"] == "TruncatedPcapError"

    def test_all_good_runs_have_no_failures(self, tiny_pcap):
        result = Experiment.pcaps(tiny_pcap).run(workers=1)
        assert result.failures == ()
