"""The public surface contract (ISSUE 5 acceptance criteria).

* every name in the curated ``__all__``s imports;
* ``Experiment.from_spec(result.spec())`` round-trips bit-exactly —
  the rebuilt experiment produces the *same content-addressed store
  keys*, so a stored campaign answers it without simulating;
* spec-driven runs equal the equivalent hand-built
  ``campaign.run_campaign`` / ``pipeline.run_all`` calls.
"""

import pytest

from repro.api import Experiment, ExperimentSpec
from tests.pipeline.test_equivalence import assert_reports_equal

CAMPAIGN_TOML = """\
scenario = "ramp"
seeds = 2

[params]
duration_s = 1.5

[vary]
n_stations = [3, 4]
"""


class TestCuratedAll:
    @pytest.mark.parametrize("module_name", ["repro", "repro.api"])
    def test_every_exported_name_resolves(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__all__ == sorted(module.__all__)
        for name in module.__all__:
            assert getattr(module, name) is not None, name

    def test_front_door_names_present(self):
        import repro

        for name in ("Experiment", "ExperimentResult", "ExperimentSpec",
                     "run_spec", "load_spec"):
            assert name in repro.__all__ or hasattr(repro, name)

    def test_old_entry_points_still_work(self):
        """No breakage: the pre-api imports every script/test uses."""
        from repro.campaign import ParameterGrid, run_campaign  # noqa: F401
        from repro.pipeline import run_all, run_batch  # noqa: F401
        from repro.sim import ScenarioConfig, run_scenario  # noqa: F401
        from repro.core import analyze_trace  # noqa: F401
        from repro.tools import build_parser, main  # noqa: F401


class TestSpecRoundTrip:
    def test_round_trip_store_keys_bit_exact(self):
        """from_spec(result.spec()) describes the *same* cells: every
        content-addressed store key matches the original's."""
        from repro.campaign import CampaignStore, cell_key

        exp = Experiment.from_spec(ExperimentSpec.from_toml(CAMPAIGN_TOML))
        result = exp.run(workers=1)

        rebuilt = Experiment.from_spec(result.spec())
        original_cells = exp.cells()
        rebuilt_cells = rebuilt.cells()
        assert rebuilt_cells == original_cells
        keys_a = [cell_key(c, "salt") for c in original_cells]
        keys_b = [cell_key(c, "salt") for c in rebuilt_cells]
        assert keys_a == keys_b

    def test_round_trip_through_toml_text(self, tmp_path):
        """spec → run → .spec() → TOML file → from_spec: still equal."""
        exp = Experiment.from_spec(ExperimentSpec.from_toml(CAMPAIGN_TOML))
        result = exp.run(workers=1)
        path = result.spec().save(tmp_path / "rerun.toml")
        assert Experiment.from_spec(path).cells() == exp.cells()

    def test_resolved_run_options_survive(self, tmp_path):
        """.run(**overrides) folds into the result's spec, so the
        re-run repeats what actually executed (store and all)."""
        store = tmp_path / "store"
        exp = Experiment.from_spec(ExperimentSpec.from_toml(CAMPAIGN_TOML))
        result = exp.run(workers=1, store_dir=store)
        spec = result.spec()
        assert spec.store == str(store)
        # The re-run is answered entirely from the store: zero dispatch.
        again = Experiment.from_spec(spec).run(workers=1)
        assert again.campaign.dispatched == 0
        assert again.campaign.store_hits == 4
        rows_a = [c.as_row() for c in result.campaign.cells]
        rows_b = [c.as_row() for c in again.campaign.cells]
        assert rows_a == rows_b  # resume is bit-exact incl. elapsed


def _strip_wall(row):
    return {k: v for k, v in row.items() if k != "wall_s"}


class TestEquivalence:
    def test_spec_campaign_equals_hand_built_run_campaign(self):
        from repro.campaign import ParameterGrid, run_campaign

        spec_result = Experiment.from_spec(
            ExperimentSpec.from_toml(CAMPAIGN_TOML)
        ).run(workers=1)

        grid = ParameterGrid(
            "ramp",
            axes={"n_stations": [3, 4]},
            seeds=2,
            fixed={"duration_s": 1.5},
        )
        direct = run_campaign(grid, workers=1)

        assert [c.name for c in spec_result.campaign.cells] == [
            c.name for c in direct.cells
        ]
        for ours, theirs in zip(spec_result.campaign.cells, direct.cells):
            assert _strip_wall(ours.as_row()) == _strip_wall(theirs.as_row())

    def test_fluent_campaign_equals_spec_campaign(self):
        fluent = (
            Experiment.scenario("ramp")
            .fix(duration_s=1.5)
            .vary(n_stations=[3, 4])
            .seeds(2)
        )
        from_file = Experiment.from_spec(ExperimentSpec.from_toml(CAMPAIGN_TOML))
        assert fluent.cells() == from_file.cells()
        a = fluent.run(workers=1)
        b = from_file.run(workers=1)
        assert [_strip_wall(r) for r in a.table()] == [
            _strip_wall(r) for r in b.table()
        ]

    def test_spec_single_equals_hand_built_run_all(self):
        """A single-scenario spec produces the identical report to
        building the scenario and calling pipeline.run_all by hand."""
        from repro.pipeline import run_all
        from repro.sim import build_scenario

        result = Experiment.scenario("uniform", n_stations=3, duration_s=1.5).run()

        built = build_scenario("uniform", n_stations=3, duration_s=1.5)
        direct = run_all(built.stream(), roster=built.roster, name="uniform")

        assert_reports_equal(result.report, direct)

    def test_spec_analysis_equals_hand_built_run_all(self, tmp_path):
        from repro.pcap import write_trace
        from repro.pipeline import run_all
        from repro.sim import build_scenario

        path = tmp_path / "t.pcap"
        write_trace(
            build_scenario("uniform", n_stations=3, duration_s=1.5).run().trace,
            path,
        )
        api_report = Experiment.pcaps(path).named("t").run().report
        direct = run_all(str(path), name="t")
        assert_reports_equal(api_report, direct)
