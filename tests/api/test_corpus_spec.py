"""Corpus experiments through the spec layer and the fluent builder.

``pcaps = {corpus = "...", where = "..."}`` in a spec file routes an
analysis through :func:`repro.corpus.analyze_corpus` — same reports,
plus the stored-analysis warm path.
"""

import pytest

from repro.api import Experiment, ExperimentSpec, SpecError, run_spec

from ..corpus.conftest import write_capture

HOUR_US = 3_600 * 1_000_000


@pytest.fixture
def corpus_dir(tmp_path):
    root = tmp_path / "corpus"
    write_capture(root / "a.pcap", channel=6, t0_us=13 * HOUR_US)
    write_capture(root / "b.snoop", channel=1, t0_us=2 * HOUR_US)
    return root


class TestParsing:
    def test_corpus_table(self):
        spec = ExperimentSpec.from_mapping(
            {"pcaps": {"corpus": "captures", "where": "channel=6"}}
        )
        assert spec.corpus == "captures"
        assert spec.corpus_where == "channel=6"
        assert spec.pcaps == ()
        assert spec.mode == "analysis"

    def test_corpus_without_where(self):
        spec = ExperimentSpec.from_mapping({"pcaps": {"corpus": "captures"}})
        assert spec.corpus == "captures"
        assert spec.corpus_where is None

    def test_unknown_table_key_suggests(self):
        with pytest.raises(SpecError, match="where"):
            ExperimentSpec.from_mapping(
                {"pcaps": {"corpus": "captures", "were": "channel=6"}}
            )

    def test_toml_round_trip(self, corpus_dir):
        spec = ExperimentSpec.from_mapping(
            {"pcaps": {"corpus": str(corpus_dir), "where": "channel=6"}}
        )
        again = ExperimentSpec.from_toml(spec.to_toml())
        assert again == spec

    def test_mapping_round_trip(self):
        spec = ExperimentSpec.from_mapping({"pcaps": {"corpus": "captures"}})
        out = spec.to_mapping()
        assert out["pcaps"] == {"corpus": "captures"}
        assert ExperimentSpec.from_mapping(out) == spec


class TestValidation:
    def test_missing_corpus_dir(self):
        spec = ExperimentSpec.from_mapping({"pcaps": {"corpus": "/nope"}})
        with pytest.raises(SpecError, match="corpus not found"):
            spec.validate()

    def test_bad_query_caught_up_front(self, corpus_dir):
        spec = ExperimentSpec.from_mapping(
            {"pcaps": {"corpus": str(corpus_dir), "where": "chanel=6"}}
        )
        with pytest.raises(SpecError, match="bad corpus query"):
            spec.validate()

    def test_pcaps_and_corpus_both_rejected(self, corpus_dir):
        spec = ExperimentSpec(pcaps=("a.pcap",), corpus=str(corpus_dir))
        with pytest.raises(SpecError, match="not both"):
            spec.validate()

    def test_where_without_corpus_rejected(self):
        spec = ExperimentSpec(pcaps=("a.pcap",), corpus_where="channel=6")
        with pytest.raises(SpecError, match="corpus"):
            spec.validate()

    def test_analyses_subset_rejected(self, corpus_dir):
        spec = ExperimentSpec(
            corpus=str(corpus_dir), analyses=("utilization",)
        )
        with pytest.raises(SpecError, match="always complete"):
            spec.validate()

    def test_scenario_and_corpus_both_rejected(self, corpus_dir):
        spec = ExperimentSpec(scenario="ramp", corpus=str(corpus_dir))
        with pytest.raises(SpecError):
            spec.validate()


class TestExecution:
    def test_spec_file_runs_corpus(self, corpus_dir, tmp_path):
        study = tmp_path / "study.toml"
        spec = ExperimentSpec.from_mapping(
            {
                "pcaps": {"corpus": str(corpus_dir), "where": "channel=6"},
                "run": {"workers": 1},
            }
        )
        study.write_text(spec.to_toml())
        result = run_spec(study)
        assert result.mode == "analysis"
        assert sorted(result.reports) == ["a.pcap"]
        assert result.reports["a.pcap"].summary.n_frames == 20

    def test_fluent_corpus_and_warm_rerun(self, corpus_dir):
        exp = Experiment.corpus(corpus_dir)
        first = exp.run(workers=1)
        assert sorted(first.reports) == ["a.pcap", "b.snoop"]
        second = exp.run(workers=1)  # warm: served from the store
        assert sorted(second.reports) == sorted(first.reports)

    def test_where_refines(self, corpus_dir):
        result = (
            Experiment.corpus(corpus_dir).where("format=snoop").run(workers=1)
        )
        assert sorted(result.reports) == ["b.snoop"]

    def test_where_on_non_corpus_rejected(self):
        with pytest.raises(SpecError, match="corpus"):
            Experiment.pcaps("a.pcap").where("channel=6")

    def test_sources_point_into_the_corpus(self, corpus_dir):
        result = Experiment.corpus(corpus_dir).run(workers=1)
        assert dict(result.sources) == {
            "a.pcap": str(corpus_dir / "a.pcap"),
            "b.snoop": str(corpus_dir / "b.snoop"),
        }
