"""HTTP + TCP front end: routes, payloads, and served-report equivalence."""

import asyncio

from repro.frames import Trace
from repro.pcap import write_trace
from repro.pipeline import run_all
from repro.serve import (
    encode_batch,
    report_to_jsonable,
    write_batch,
    write_eof,
)

from .conftest import daemon_running, http_json, http_request, make_segments


def test_health_and_metrics():
    async def main():
        async with daemon_running() as daemon:
            status, health = await http_request(
                daemon.http_port, "GET", "/health"
            )
            assert status == 200
            assert health["status"] == "ok"
            assert health["feeds"] == 0
            status, metrics = await http_request(
                daemon.http_port, "GET", "/metrics"
            )
            assert status == 200
            assert metrics["feeds"] == 0
            assert metrics["requests_total"] >= 1

    asyncio.run(main())


def test_unknown_route_404():
    async def main():
        async with daemon_running() as daemon:
            status, body = await http_request(
                daemon.http_port, "GET", "/nope"
            )
            assert status == 404
            assert "no route" in body["error"]

    asyncio.run(main())


def test_unknown_feed_404():
    async def main():
        async with daemon_running() as daemon:
            status, body = await http_request(
                daemon.http_port, "GET", "/feeds/ghost/report"
            )
            assert status == 404
            assert "unknown feed" in body["error"]

    asyncio.run(main())


def test_malformed_request_line_400():
    async def main():
        async with daemon_running() as daemon:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", daemon.http_port
            )
            writer.write(b"GARBAGE\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b" 400 " in raw.split(b"\r\n", 1)[0]

    asyncio.run(main())


def test_invalid_json_body_400():
    async def main():
        async with daemon_running() as daemon:
            status, body = await http_request(
                daemon.http_port, "POST", "/feeds", b"{not json"
            )
            assert status == 400
            assert "invalid JSON" in body["error"]

    asyncio.run(main())


def test_create_push_feed_and_info():
    async def main():
        async with daemon_running() as daemon:
            status, feed = await http_json(
                daemon.http_port, "POST", "/feeds", {"name": "cam-1"}
            )
            assert status == 200
            assert feed["id"] == "cam-1"
            assert feed["state"] == "running"
            status, info = await http_request(
                daemon.http_port, "GET", "/feeds/cam-1"
            )
            assert status == 200
            assert info["kind"] == "push"
            status, listing = await http_request(
                daemon.http_port, "GET", "/feeds"
            )
            assert [f["id"] for f in listing["feeds"]] == ["cam-1"]

    asyncio.run(main())


def test_unknown_feed_kind_400():
    async def main():
        async with daemon_running() as daemon:
            status, body = await http_json(
                daemon.http_port, "POST", "/feeds", {"kind": "quantum"}
            )
            assert status == 400

    asyncio.run(main())


def test_unknown_scenario_400():
    async def main():
        async with daemon_running() as daemon:
            status, body = await http_json(
                daemon.http_port,
                "POST",
                "/feeds",
                {"kind": "scenario", "scenario": "not-a-scenario"},
            )
            assert status == 400
            assert "bad scenario" in body["error"]

    asyncio.run(main())


def test_duplicate_feed_name_409():
    async def main():
        async with daemon_running() as daemon:
            await http_json(daemon.http_port, "POST", "/feeds", {"name": "x"})
            status, body = await http_json(
                daemon.http_port, "POST", "/feeds", {"name": "x"}
            )
            assert status == 409

    asyncio.run(main())


def test_http_frames_push_and_report_equivalence():
    segments = make_segments()

    async def main():
        async with daemon_running() as daemon:
            await http_json(daemon.http_port, "POST", "/feeds", {"name": "f"})
            for segment in segments:
                status, reply = await http_request(
                    daemon.http_port,
                    "POST",
                    "/feeds/f/frames",
                    encode_batch(segment),
                )
                assert status == 200
                assert reply["queued_frames"] == len(segment)
            status, info = await http_request(
                daemon.http_port, "POST", "/feeds/f/eof"
            )
            assert status == 200
            assert info["state"] == "closed"
            status, served = await http_request(
                daemon.http_port, "GET", "/feeds/f/report"
            )
            assert status == 200
            local = report_to_jsonable(run_all(iter(segments), name="f"))
            assert served == local

    asyncio.run(main())


def test_corrupt_http_push_rejected_feed_survives():
    segments = make_segments()

    async def main():
        async with daemon_running() as daemon:
            await http_json(daemon.http_port, "POST", "/feeds", {"name": "f"})
            status, body = await http_request(
                daemon.http_port, "POST", "/feeds/f/frames", b"\x00garbage"
            )
            assert status == 400
            status, info = await http_request(
                daemon.http_port, "GET", "/feeds/f"
            )
            assert info["state"] == "running"      # rejection, not death
            assert info["ingest_errors"] == 1
            status, reply = await http_request(    # feed still ingests fine
                daemon.http_port,
                "POST",
                "/feeds/f/frames",
                encode_batch(segments[0]),
            )
            assert status == 200

    asyncio.run(main())


def test_frames_to_closed_feed_409():
    async def main():
        async with daemon_running() as daemon:
            await http_json(daemon.http_port, "POST", "/feeds", {"name": "f"})
            await http_request(daemon.http_port, "POST", "/feeds/f/eof")
            status, body = await http_request(
                daemon.http_port,
                "POST",
                "/feeds/f/frames",
                encode_batch(make_segments(1)[0]),
            )
            assert status == 409

    asyncio.run(main())


def test_delete_feed():
    async def main():
        async with daemon_running() as daemon:
            await http_json(daemon.http_port, "POST", "/feeds", {"name": "f"})
            status, body = await http_request(
                daemon.http_port, "DELETE", "/feeds/f"
            )
            assert status == 200
            status, _ = await http_request(
                daemon.http_port, "GET", "/feeds/f"
            )
            assert status == 404

    asyncio.run(main())


def test_pcap_upload_report_equivalence(tmp_path):
    segments = make_segments()
    rows = [r for s in segments for r in s.iter_rows()]
    path = tmp_path / "upload.pcap"
    write_trace(Trace.from_rows(rows), path)
    raw = path.read_bytes()

    async def main():
        async with daemon_running() as daemon:
            await http_json(daemon.http_port, "POST", "/feeds", {"name": "f"})
            status, reply = await http_request(
                daemon.http_port, "POST", "/feeds/f/pcap", raw
            )
            assert status == 200
            assert reply["queued_frames"] == len(rows)
            status, info = await http_request(
                daemon.http_port, "POST", "/feeds/f/eof"
            )
            assert info["state"] == "closed"
            _, served = await http_request(
                daemon.http_port, "GET", "/feeds/f/report"
            )
            assert served == report_to_jsonable(run_all(path, name="f"))

    asyncio.run(main())


def test_tcp_ingest_clean_stream():
    segments = make_segments()

    async def main():
        async with daemon_running() as daemon:
            await http_json(daemon.http_port, "POST", "/feeds", {"name": "f"})
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", daemon.ingest_port
            )
            writer.write(b"FEED f\n")
            for segment in segments:
                await write_batch(writer, segment)
            await write_eof(writer)
            reply = await reader.readline()
            writer.close()
            total = sum(len(s) for s in segments)
            assert reply == f"OK {total}\n".encode()
            _, info = await http_request(
                daemon.http_port, "GET", "/feeds/f"
            )
            assert info["state"] == "closed"
            assert info["frames_in"] == total
            _, served = await http_request(
                daemon.http_port, "GET", "/feeds/f/report"
            )
            assert served == report_to_jsonable(
                run_all(iter(segments), name="f")
            )

    asyncio.run(main())


def test_tcp_ingest_bad_handshake():
    async def main():
        async with daemon_running() as daemon:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", daemon.ingest_port
            )
            writer.write(b"HELLO\n")
            await writer.drain()
            reply = await reader.readline()
            writer.close()
            assert reply.startswith(b"ERR expected")

    asyncio.run(main())


def test_tcp_ingest_unknown_feed():
    async def main():
        async with daemon_running() as daemon:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", daemon.ingest_port
            )
            writer.write(b"FEED ghost\n")
            await writer.drain()
            reply = await reader.readline()
            writer.close()
            assert reply.startswith(b"ERR unknown feed")

    asyncio.run(main())


def test_shutdown_endpoint_drains_and_exits():
    segments = make_segments()

    async def main():
        from repro.serve import ServeDaemon

        daemon = ServeDaemon(port=0, ingest_port=0)
        await daemon.start()
        await http_json(daemon.http_port, "POST", "/feeds", {"name": "f"})
        for segment in segments:
            await http_request(
                daemon.http_port,
                "POST",
                "/feeds/f/frames",
                encode_batch(segment),
            )
        status, body = await http_request(
            daemon.http_port, "POST", "/shutdown"
        )
        assert status == 202
        assert body == {"status": "draining"}
        await asyncio.wait_for(daemon.serve_until_shutdown(), timeout=30)
        feed = daemon.manager.get("f")
        assert feed.state == "closed"      # queued frames were drained
        assert feed.frames_in == sum(len(s) for s in segments)

    asyncio.run(main())


def test_scenario_feed_via_http():
    async def main():
        async with daemon_running() as daemon:
            status, feed = await http_json(
                daemon.http_port,
                "POST",
                "/feeds",
                {
                    "kind": "scenario",
                    "scenario": "ramp",
                    "params": {"duration_s": 1},
                    "name": "sim",
                },
            )
            assert status == 200
            assert feed["kind"] == "scenario"
            await daemon.manager.get("sim").done.wait()
            _, info = await http_request(
                daemon.http_port, "GET", "/feeds/sim"
            )
            assert info["state"] == "closed"
            assert info["frames_in"] > 0
            status, report = await http_request(
                daemon.http_port, "GET", "/feeds/sim/report"
            )
            assert status == 200
            assert report["summary"]["frames"] == info["frames_in"]

    asyncio.run(main())
