"""Wire-format contract: framing, validation, and disconnect semantics."""

import asyncio
import struct

import numpy as np
import pytest

from repro.frames import TRACE_SCHEMA, Trace
from repro.serve import (
    BATCH_MAGIC,
    MAX_BATCH_BYTES,
    FrameBatchError,
    decode_batch,
    encode_batch,
    encode_eof,
    frame_batch,
    read_batches,
)

from .conftest import assert_traces_equal, make_segments


def test_roundtrip_preserves_every_column():
    trace = make_segments(1, frames_per=6)[0]
    assert_traces_equal(trace, decode_batch(encode_batch(trace)))


def test_roundtrip_empty_trace():
    decoded = decode_batch(encode_batch(Trace.empty()))
    assert len(decoded) == 0


def test_decoded_dtypes_match_schema():
    decoded = decode_batch(encode_batch(make_segments(1)[0]))
    for name, dtype in TRACE_SCHEMA:
        assert decoded.column(name).dtype == np.dtype(dtype), name


def test_payload_too_short_for_row_count():
    with pytest.raises(FrameBatchError, match="too short"):
        decode_batch(b"\x00\x00")


def test_truncated_payload_rejected():
    payload = encode_batch(make_segments(1)[0])
    with pytest.raises(FrameBatchError, match="carries"):
        decode_batch(payload[:-3])


def test_padded_payload_rejected():
    payload = encode_batch(make_segments(1)[0])
    with pytest.raises(FrameBatchError, match="carries"):
        decode_batch(payload + b"\x00")


def test_eof_marker_layout():
    assert encode_eof() == BATCH_MAGIC + struct.pack(">I", 0)


def test_frame_batch_layout():
    payload = encode_batch(make_segments(1)[0])
    framed = frame_batch(payload)
    assert framed[:4] == BATCH_MAGIC
    assert struct.unpack(">I", framed[4:8])[0] == len(payload)
    assert framed[8:] == payload


def _reader_with(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


async def _drain(reader):
    return [batch async for batch in read_batches(reader)]


def test_read_batches_clean_stream():
    segments = make_segments(3)
    wire = b"".join(frame_batch(encode_batch(s)) for s in segments)
    wire += encode_eof()

    async def main():
        return await _drain(_reader_with(wire))

    received = asyncio.run(main())
    assert len(received) == len(segments)
    for sent, got in zip(segments, received):
        assert_traces_equal(sent, got)


def test_read_batches_bad_magic():
    async def main():
        reader = _reader_with(b"XXXX" + struct.pack(">I", 0))
        with pytest.raises(FrameBatchError, match="magic"):
            await _drain(reader)

    asyncio.run(main())


def test_read_batches_oversized_length_capped():
    async def main():
        reader = _reader_with(
            BATCH_MAGIC + struct.pack(">I", MAX_BATCH_BYTES + 1)
        )
        with pytest.raises(FrameBatchError, match="exceeds cap"):
            await _drain(reader)

    asyncio.run(main())


def test_read_batches_drop_mid_header():
    async def main():
        reader = _reader_with(BATCH_MAGIC[:2])  # half a header, then EOF
        with pytest.raises(ConnectionResetError, match="mid-batch header"):
            await _drain(reader)

    asyncio.run(main())


def test_read_batches_drop_mid_payload():
    payload = encode_batch(make_segments(1)[0])

    async def main():
        reader = _reader_with(frame_batch(payload)[:-5])
        with pytest.raises(ConnectionResetError, match="mid-batch payload"):
            await _drain(reader)

    asyncio.run(main())


def test_read_batches_close_without_eof_marker():
    """A clean TCP close between batches is still a producer crash."""
    wire = frame_batch(encode_batch(make_segments(1)[0]))  # no marker

    async def main():
        reader = _reader_with(wire)
        with pytest.raises(ConnectionResetError, match="without end-of-feed"):
            await _drain(reader)

    asyncio.run(main())
