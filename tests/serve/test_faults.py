"""Fault injection: every failure stays inside its feed.

The contract under test: a client disconnect, a corrupt batch, unsorted
timestamps, a truncated upload or a crashing analysis kill exactly one
feed — with a typed error record and a report covering the intact
prefix — while the daemon keeps answering on every endpoint and every
other feed keeps flowing.
"""

import asyncio

from repro.frames import Trace
from repro.pcap import write_trace
from repro.pipeline import run_all
from repro.serve import encode_batch, frame_batch, report_to_jsonable, write_batch, write_eof

from .conftest import daemon_running, http_json, http_request, make_segments


async def create_feed(daemon, name):
    status, feed = await http_json(
        daemon.http_port, "POST", "/feeds", {"name": name}
    )
    assert status == 200
    return feed


async def assert_daemon_healthy(daemon):
    status, health = await http_request(daemon.http_port, "GET", "/health")
    assert status == 200
    assert health["status"] == "ok"


def test_client_disconnect_mid_pcap_upload(tmp_path):
    segments = make_segments()
    rows = [r for s in segments for r in s.iter_rows()]
    path = tmp_path / "u.pcap"
    write_trace(Trace.from_rows(rows), path)
    raw = path.read_bytes()

    async def main():
        async with daemon_running() as daemon:
            await create_feed(daemon, "f")
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", daemon.http_port
            )
            head = (
                f"POST /feeds/f/pcap HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(raw)}\r\n\r\n"
            ).encode()
            writer.write(head + raw[: len(raw) // 2])  # half, then vanish
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            feed = daemon.manager.get("f")
            await feed.done.wait()
            assert feed.state == "failed"
            assert feed.error.error_type == "ConnectionResetError"
            assert "mid-upload" in feed.error.message
            await assert_daemon_healthy(daemon)

    asyncio.run(main())


def test_tcp_disconnect_mid_batch():
    segments = make_segments()

    async def main():
        async with daemon_running() as daemon:
            await create_feed(daemon, "f")
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", daemon.ingest_port
            )
            writer.write(b"FEED f\n")
            await write_batch(writer, segments[0])
            framed = frame_batch(encode_batch(segments[1]))
            writer.write(framed[:-6])              # drop mid-payload
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            feed = daemon.manager.get("f")
            await feed.done.wait()
            assert feed.state == "failed"
            assert feed.error.error_type == "ConnectionResetError"
            assert feed.error.where == "ingest"
            # Report covers exactly the intact prefix.
            _, served = await http_request(
                daemon.http_port, "GET", "/feeds/f/report"
            )
            assert served == report_to_jsonable(
                run_all(iter(segments[:1]), name="f")
            )
            await assert_daemon_healthy(daemon)

    asyncio.run(main())


def test_corrupt_tcp_batch_fails_only_that_feed():
    segments = make_segments()

    async def main():
        async with daemon_running() as daemon:
            await create_feed(daemon, "bad")
            await create_feed(daemon, "good")
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", daemon.ingest_port
            )
            writer.write(b"FEED bad\n")
            await write_batch(writer, segments[0])
            writer.write(b"JUNKJUNKJUNK")           # bad magic mid-stream
            await writer.drain()
            reply = await reader.readline()
            assert reply.startswith(b"ERR")
            writer.close()
            bad = daemon.manager.get("bad")
            await bad.done.wait()
            assert bad.state == "failed"
            assert bad.error.error_type == "FrameBatchError"
            # The other feed is untouched and still ingests.
            status, reply = await http_request(
                daemon.http_port,
                "POST",
                "/feeds/good/frames",
                encode_batch(segments[1]),
            )
            assert status == 200
            _, info = await http_request(
                daemon.http_port, "GET", "/feeds/good"
            )
            assert info["state"] == "running"
            await assert_daemon_healthy(daemon)

    asyncio.run(main())


def test_out_of_order_timestamps_fail_analysis():
    segments = make_segments()

    async def main():
        async with daemon_running() as daemon:
            await create_feed(daemon, "f")
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", daemon.ingest_port
            )
            writer.write(b"FEED f\n")
            await write_batch(writer, segments[1])  # later window first
            await write_batch(writer, segments[0])  # time runs backwards
            await write_eof(writer)
            await reader.readline()
            writer.close()
            feed = daemon.manager.get("f")
            await feed.done.wait()
            assert feed.state == "failed"
            assert feed.error.error_type == "UnsortedStreamError"
            assert feed.error.where == "analyze"
            assert feed.error.at_frames == len(segments[1])
            await assert_daemon_healthy(daemon)

    asyncio.run(main())


def test_worker_crash_is_contained(monkeypatch):
    segments = make_segments()

    async def main():
        async with daemon_running() as daemon:
            await create_feed(daemon, "f")
            feed = daemon.manager.get("f")

            def boom(segment):
                raise RuntimeError("consumer exploded")

            monkeypatch.setattr(feed.executor, "feed", boom)
            await http_request(
                daemon.http_port,
                "POST",
                "/feeds/f/frames",
                encode_batch(segments[0]),
            )
            await feed.done.wait()
            assert feed.state == "failed"
            assert feed.error.error_type == "RuntimeError"
            assert feed.error.where == "analyze"
            await assert_daemon_healthy(daemon)

    asyncio.run(main())


def test_failures_visible_in_metrics():
    segments = make_segments()

    async def main():
        async with daemon_running() as daemon:
            await create_feed(daemon, "dead")
            await create_feed(daemon, "alive")
            feed = daemon.manager.get("dead")
            await feed.put(segments[0])
            await feed.put_fault(ValueError("injected"), "ingest")
            await feed.done.wait()
            status, metrics = await http_request(
                daemon.http_port, "GET", "/metrics"
            )
            assert metrics["states"] == {"failed": 1, "running": 1}
            record = metrics["per_feed"]["dead"]["error"]
            assert record["error_type"] == "ValueError"
            assert record["where"] == "ingest"
            assert record["at_frames"] == len(segments[0])

    asyncio.run(main())


def test_many_concurrent_feeds_stay_independent():
    """Interleaved pushes across N feeds: every report is exactly its own."""
    n_feeds = 5
    per_feed = {
        f"feed-{i}": make_segments(3, frames_per=2 + 2 * i)
        for i in range(n_feeds)
    }

    async def main():
        async with daemon_running() as daemon:
            for name in per_feed:
                await create_feed(daemon, name)
            # Round-robin interleave: chunk k of every feed, then k+1.
            for k in range(3):
                for name, segments in per_feed.items():
                    status, _ = await http_request(
                        daemon.http_port,
                        "POST",
                        f"/feeds/{name}/frames",
                        encode_batch(segments[k]),
                    )
                    assert status == 200
            for name in per_feed:
                status, info = await http_request(
                    daemon.http_port, "POST", f"/feeds/{name}/eof"
                )
                assert info["state"] == "closed"
            for name, segments in per_feed.items():
                _, served = await http_request(
                    daemon.http_port, "GET", f"/feeds/{name}/report"
                )
                assert served == report_to_jsonable(
                    run_all(iter(segments), name=name)
                )

    asyncio.run(main())


def test_concurrent_tcp_pushers():
    """Two sockets streaming simultaneously; both land exact reports."""
    streams = {"a": make_segments(4, 4), "b": make_segments(4, 6)}

    async def push(daemon, name, segments):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", daemon.ingest_port
        )
        writer.write(f"FEED {name}\n".encode())
        for segment in segments:
            await write_batch(writer, segment)
        await write_eof(writer)
        reply = await reader.readline()
        writer.close()
        return reply

    async def main():
        async with daemon_running() as daemon:
            for name in streams:
                await create_feed(daemon, name)
            replies = await asyncio.gather(
                *(push(daemon, n, s) for n, s in streams.items())
            )
            assert all(r.startswith(b"OK") for r in replies)
            for name, segments in streams.items():
                feed = daemon.manager.get(name)
                await feed.done.wait()
                _, served = await http_request(
                    daemon.http_port, "GET", f"/feeds/{name}/report"
                )
                assert served == report_to_jsonable(
                    run_all(iter(segments), name=name)
                )

    asyncio.run(main())


def test_truncated_pcap_upload_keeps_prefix(tmp_path):
    segments = make_segments()
    rows = [r for s in segments for r in s.iter_rows()]
    path = tmp_path / "cut.pcap"
    write_trace(Trace.from_rows(rows), path)
    raw = path.read_bytes()

    async def main():
        async with daemon_running() as daemon:
            await create_feed(daemon, "f")
            status, _ = await http_request(
                daemon.http_port, "POST", "/feeds/f/pcap", raw[:-9]
            )
            assert status == 200            # upload accepted; damage inside
            feed = daemon.manager.get("f")
            await feed.done.wait()
            assert feed.state == "failed"
            assert feed.error.error_type == "TruncatedPcapError"
            _, served = await http_request(
                daemon.http_port, "GET", "/feeds/f/report"
            )
            assert served["summary"]["frames"] == len(rows) - 1
            await assert_daemon_healthy(daemon)

    asyncio.run(main())


def test_report_of_failed_feed_is_stable():
    """Asking a failed feed twice returns the same cached final report."""
    segments = make_segments()

    async def main():
        async with daemon_running() as daemon:
            await create_feed(daemon, "f")
            feed = daemon.manager.get("f")
            await feed.put(segments[0])
            await feed.put_fault(OSError("radio gone"), "ingest")
            await feed.done.wait()
            _, first = await http_request(
                daemon.http_port, "GET", "/feeds/f/report"
            )
            _, second = await http_request(
                daemon.http_port, "GET", "/feeds/f/report"
            )
            assert first == second
            assert first == report_to_jsonable(
                run_all(iter(segments[:1]), name="f")
            )

    asyncio.run(main())
