"""Serve-layer test harness: deterministic asyncio, no wall-clock sleeps.

Every test drives the daemon inside one ``asyncio.run()`` — progress is
awaited on events (``feed.done``), completions, or zero-delay yields to
the loop, never timed sleeps, so the suite is immune to machine speed.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.frames import TRACE_SCHEMA, Trace

from ..conftest import ack, data


def make_segments(n_segments: int = 3, frames_per: int = 4) -> list[Trace]:
    """Sorted, non-overlapping DATA/ACK segments (one exchange per 10 ms)."""
    segments = []
    t = 0
    for _ in range(n_segments):
        rows = []
        for _ in range(frames_per // 2):
            rows.append(data(t + 1_000, src=10, dst=1, size=1000))
            rows.append(ack(t + 2_400, src=1, dst=10))
            t += 10_000
        segments.append(Trace.from_rows(rows))
    return segments


def assert_traces_equal(a: Trace, b: Trace) -> None:
    assert len(a) == len(b)
    for name, _ in TRACE_SCHEMA:
        assert np.array_equal(a.column(name), b.column(name)), name


async def spin(cycles: int = 50) -> None:
    """Yield to the event loop ``cycles`` times (no wall-clock delay)."""
    for _ in range(cycles):
        await asyncio.sleep(0)


async def wait_for(predicate, cycles: int = 10_000) -> None:
    """Spin the loop until ``predicate()`` holds (bounded, deterministic)."""
    for _ in range(cycles):
        if predicate():
            return
        await asyncio.sleep(0)
    raise AssertionError(f"condition never held: {predicate}")


async def http_request(
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    host: str = "127.0.0.1",
):
    """One HTTP/1.1 exchange against the daemon; returns (status, json)."""
    reader, writer = await asyncio.open_connection(host, port)
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode()
    writer.write(head + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head_bytes, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head_bytes.split(b" ", 2)[1])
    return status, json.loads(payload)


async def http_json(port: int, method: str, path: str, obj) -> tuple:
    return await http_request(port, method, path, json.dumps(obj).encode())


class daemon_running:
    """``async with daemon_running() as d:`` — started, always shut down."""

    def __init__(self, **kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("ingest_port", 0)
        self.kwargs = kwargs

    async def __aenter__(self):
        from repro.serve import ServeDaemon

        self.daemon = ServeDaemon(**self.kwargs)
        await self.daemon.start()
        return self.daemon

    async def __aexit__(self, exc_type, exc, tb):
        await self.daemon.shutdown()
        return False


@pytest.fixture
def segments():
    return make_segments()
