"""Feed lifecycle: isolation, bounded queues, ordered faults, drain.

All progress is awaited on ``feed.done`` or zero-delay loop yields —
nothing here depends on wall-clock time.
"""

import asyncio

import pytest

from repro.frames import Trace
from repro.pcap import write_trace
from repro.pipeline import UnsortedStreamError, run_all
from repro.serve import FeedManager, UnknownFeedError
from repro.serve.feeds import Feed
from repro.sim import build_scenario

from ..pipeline.test_equivalence import assert_reports_equal
from .conftest import make_segments, wait_for


class GatedFeed(Feed):
    """A feed whose worker waits for an explicit green light."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = asyncio.Event()

    async def _drive(self):
        await self.gate.wait()
        await super()._drive()


def gated_manager(**kwargs) -> FeedManager:
    manager = FeedManager(**kwargs)
    manager.feed_class = GatedFeed
    return manager


def test_worker_processes_and_closes(segments):
    async def main():
        manager = FeedManager()
        feed = manager.create_feed("f")
        for segment in segments:
            await feed.put(segment)
        await feed.put_eof()
        await feed.done.wait()
        assert feed.state == "closed"
        assert feed.frames_in == sum(len(s) for s in segments)
        assert feed.batches_in == len(segments)
        assert feed.error is None
        assert_reports_equal(
            run_all(iter(segments), name="f"), feed.report()
        )

    asyncio.run(main())


def test_rolling_report_matches_prefix(segments):
    async def main():
        manager = FeedManager()
        feed = manager.create_feed("f")
        analysed = 0
        for k, segment in enumerate(segments, start=1):
            await feed.put(segment)
            analysed += len(segment)
            await wait_for(lambda: feed.frames_in == analysed)
            assert_reports_equal(
                run_all(iter(segments[:k]), name="f"), feed.report()
            )
        await feed.put_eof()
        await feed.done.wait()

    asyncio.run(main())


def test_producer_fault_keeps_prefix(segments):
    async def main():
        manager = FeedManager()
        feed = manager.create_feed("f")
        await feed.put(segments[0])
        await feed.put_fault(ValueError("sniffer unplugged"), "ingest")
        await feed.done.wait()
        assert feed.state == "failed"
        assert feed.error.error_type == "ValueError"
        assert feed.error.where == "ingest"
        assert feed.error.at_frames == len(segments[0])
        assert_reports_equal(
            run_all(iter(segments[:1]), name="f"), feed.report()
        )

    asyncio.run(main())


def test_fault_queued_behind_clean_segments(segments):
    """The fault must not overtake segments already in the queue."""

    async def main():
        manager = gated_manager()
        feed = manager.create_feed("f")
        for segment in segments:
            await feed.put(segment)
        await feed.put_fault(RuntimeError("late damage"), "ingest")
        feed.gate.set()
        await feed.done.wait()
        assert feed.state == "failed"
        assert feed.frames_in == sum(len(s) for s in segments)
        assert feed.error.at_frames == feed.frames_in
        assert_reports_equal(
            run_all(iter(segments), name="f"), feed.report()
        )

    asyncio.run(main())


def test_analyze_failure_is_recorded(segments):
    async def main():
        manager = FeedManager()
        feed = manager.create_feed("f")
        await feed.put(segments[1])       # starts later than segments[0]
        await feed.put(segments[0])       # time goes backwards: analysis fails
        await feed.put_eof()
        await feed.done.wait()
        assert feed.state == "failed"
        assert feed.error.error_type == "UnsortedStreamError"
        assert feed.error.where == "analyze"
        assert feed.error.at_frames == len(segments[1])

    asyncio.run(main())


def test_put_after_eof_rejected(segments):
    async def main():
        manager = FeedManager()
        feed = manager.create_feed("f")
        await feed.put_eof()
        with pytest.raises(RuntimeError, match="draining|closed"):
            await feed.put(segments[0])

    asyncio.run(main())


def test_backpressure_blocks_producer(segments):
    async def main():
        manager = gated_manager(queue_chunks=2)
        feed = manager.create_feed("f")
        extra = make_segments(4)

        async def producer():
            for segment in extra:
                await feed.put(segment)

        task = asyncio.get_running_loop().create_task(producer())
        await wait_for(lambda: feed.queue.full())
        for _ in range(50):                # give it every chance to overfill
            await asyncio.sleep(0)
        assert not task.done()             # third put is blocked
        assert feed.put_waits >= 1
        assert feed.queue.qsize() == 2     # bounded: never grew past the cap
        feed.gate.set()                    # open the drain
        await task                         # producer now completes
        await feed.put_eof()
        await feed.done.wait()
        assert feed.frames_in == sum(len(s) for s in extra)

    asyncio.run(main())


def test_auto_ids_and_duplicates():
    async def main():
        manager = FeedManager()
        assert manager.create_feed().id == "feed-1"
        assert manager.create_feed().id == "feed-2"
        manager.create_feed("named")
        with pytest.raises(ValueError, match="already exists"):
            manager.create_feed("named")
        await manager.shutdown()

    asyncio.run(main())


def test_max_feeds_limit():
    async def main():
        manager = FeedManager(max_feeds=2)
        manager.create_feed()
        manager.create_feed()
        with pytest.raises(RuntimeError, match="feed limit"):
            manager.create_feed()
        await manager.shutdown()

    asyncio.run(main())


def test_no_new_feeds_during_shutdown():
    async def main():
        manager = FeedManager()
        await manager.shutdown()
        with pytest.raises(RuntimeError, match="shutting down"):
            manager.create_feed()

    asyncio.run(main())


def test_delete_cancels_and_forgets(segments):
    async def main():
        manager = gated_manager()
        feed = manager.create_feed("f")
        await feed.put(segments[0])
        await manager.delete("f")          # worker still gated: cancelled
        with pytest.raises(UnknownFeedError):
            manager.get("f")
        assert feed._worker.done()

    asyncio.run(main())


def test_metrics_aggregate(segments):
    async def main():
        manager = FeedManager()
        a = manager.create_feed("a")
        b = manager.create_feed("b")
        await a.put(segments[0])
        await a.put_eof()
        await a.done.wait()
        metrics = manager.metrics()
        assert metrics["feeds"] == 2
        assert metrics["states"] == {"closed": 1, "running": 1}
        assert metrics["frames_total"] == len(segments[0])
        assert set(metrics["per_feed"]) == {"a", "b"}
        assert metrics["per_feed"]["a"]["state"] == "closed"
        await manager.shutdown()

    asyncio.run(main())


def test_shutdown_drains_queued_segments(segments):
    """Nothing already ingested is dropped by a graceful shutdown."""

    async def main():
        manager = gated_manager()
        feed = manager.create_feed("f")
        for segment in segments:
            await feed.put(segment)
        task = asyncio.get_running_loop().create_task(manager.shutdown())
        for _ in range(50):
            await asyncio.sleep(0)
        assert not task.done()             # waiting on the gated worker
        feed.gate.set()
        await task
        assert feed.state == "closed"
        assert feed.frames_in == sum(len(s) for s in segments)
        assert_reports_equal(
            run_all(iter(segments), name="f"), feed.report()
        )

    asyncio.run(main())


def test_shutdown_is_idempotent():
    async def main():
        manager = FeedManager()
        manager.create_feed("f")
        await manager.shutdown()
        await manager.shutdown()

    asyncio.run(main())


def test_ingest_pcap_clean(tmp_path, segments):
    path = tmp_path / "ok.pcap"
    rows = [r for s in segments for r in s.iter_rows()]
    write_trace(Trace.from_rows(rows), path)

    async def main():
        manager = FeedManager(chunk_frames=5)
        feed = manager.create_feed("f")
        queued = await manager.ingest_pcap(feed, path)
        await feed.put_eof()
        await feed.done.wait()
        assert queued == feed.frames_in == len(rows)
        assert_reports_equal(run_all(path, name="f"), feed.report())

    asyncio.run(main())


def test_ingest_truncated_pcap_fails_feed_with_prefix(tmp_path, segments):
    path = tmp_path / "cut.pcap"
    rows = [r for s in segments for r in s.iter_rows()]
    write_trace(Trace.from_rows(rows), path)
    raw = path.read_bytes()
    path.write_bytes(raw[:-9])             # last record loses its tail

    async def main():
        manager = FeedManager(chunk_frames=5)
        feed = manager.create_feed("f")
        await manager.ingest_pcap(feed, path)
        await feed.done.wait()
        assert feed.state == "failed"
        assert feed.error.error_type == "TruncatedPcapError"
        assert feed.error.where == "ingest"
        assert feed.frames_in == len(rows) - 1
        assert feed.report().summary.n_frames == len(rows) - 1

    asyncio.run(main())


def test_attach_scenario_runs_to_completion():
    built = build_scenario("ramp", duration_s=2)
    reference = build_scenario("ramp", duration_s=2)
    expected = run_all(
        reference.stream(chunk_frames=512), reference.roster, name="f"
    )

    async def main():
        manager = FeedManager(chunk_frames=512)
        feed = manager.attach_scenario(built, "f")
        await feed.done.wait()
        assert feed.state == "closed"
        assert feed.kind == "scenario"
        assert feed.frames_in > 0
        report = feed.report()
        assert report.ap_activity is not None   # roster consumers attached
        assert_reports_equal(expected, report)

    asyncio.run(main())
