"""Tests for utilization binning (the Figure 6-15 x-axis transform)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import bin_by_utilization, utilization_bins


class TestUtilizationBins:
    def test_rounding(self):
        bins = utilization_bins(np.array([54.4, 54.5, 54.6]))
        assert list(bins) == [54, 54, 55]  # banker's rounding on .5

    def test_clipping(self):
        bins = utilization_bins(np.array([-3.0, 105.0]))
        assert list(bins) == [0, 100]


class TestBinByUtilization:
    def test_averages_within_bin(self):
        util = np.array([50.2, 49.8, 50.1, 80.0])
        values = np.array([1.0, 2.0, 3.0, 10.0])
        series = bin_by_utilization(util, values)
        assert series.value_at(50) == pytest.approx(2.0)
        assert series.value_at(80) == pytest.approx(10.0)
        assert series.count[list(series.utilization).index(50)] == 3

    def test_min_count_filters_sparse_bins(self):
        util = np.array([50.0, 50.0, 70.0])
        values = np.array([1.0, 3.0, 9.0])
        series = bin_by_utilization(util, values, min_count=2)
        assert list(series.utilization) == [50.0]

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            bin_by_utilization(np.array([1.0]), np.array([1.0, 2.0]))

    def test_restricted_range(self):
        util = np.array([10.0, 50.0, 95.0])
        values = np.array([1.0, 2.0, 3.0])
        series = bin_by_utilization(util, values).restricted(30, 99)
        assert list(series.utilization) == [50.0, 95.0]

    def test_value_at_nearest(self):
        series = bin_by_utilization(np.array([50.0]), np.array([7.0]))
        assert series.value_at(48.0) == 7.0  # nearest bin wins

    def test_value_at_empty_is_nan(self):
        series = bin_by_utilization(np.array([50.0]), np.array([1.0])).restricted(
            60, 70
        )
        assert np.isnan(series.value_at(65))

    def test_smoothed_preserves_length(self):
        util = np.arange(30.0, 60.0)
        series = bin_by_utilization(util, np.sin(util))
        smoothed = series.smoothed(5)
        assert len(smoothed) == len(series)
        assert np.array_equal(smoothed.utilization, series.utilization)


@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(-50, 50)),
        min_size=1,
        max_size=80,
    )
)
def test_binned_mean_bounded_by_value_range(pairs):
    util = np.array([u for u, _ in pairs])
    values = np.array([v for _, v in pairs])
    series = bin_by_utilization(util, values)
    assert np.all(series.value >= values.min() - 1e-9)
    assert np.all(series.value <= values.max() + 1e-9)
    # Count-weighted mean of bins equals the global mean.
    weighted = (series.value * series.count).sum() / series.count.sum()
    assert weighted == pytest.approx(values.mean(), abs=1e-6)
