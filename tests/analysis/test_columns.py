"""Tests for the ColumnTable (the pandas substitute)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import ColumnTable


@pytest.fixture
def table():
    return ColumnTable(
        {
            "key": [1, 2, 1, 3, 2, 1],
            "value": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
        }
    )


class TestConstruction:
    def test_length_and_names(self, table):
        assert len(table) == 6
        assert table.column_names == ["key", "value"]
        assert "key" in table and "missing" not in table

    def test_ragged_rejected(self):
        with pytest.raises(ValueError, match="length"):
            ColumnTable({"a": [1, 2], "b": [1]})

    def test_empty_table(self):
        assert len(ColumnTable({})) == 0

    def test_with_column(self, table):
        extended = table.with_column("double", table.column("value") * 2)
        assert "double" in extended
        assert "double" not in table  # original untouched
        with pytest.raises(ValueError):
            table.with_column("bad", [1])


class TestTransforms:
    def test_filter(self, table):
        out = table.filter(table.column("key") == 1)
        assert len(out) == 3
        assert list(out.column("value")) == [10.0, 30.0, 60.0]

    def test_filter_bad_mask(self, table):
        with pytest.raises(ValueError):
            table.filter(np.array([1, 0, 1, 0, 1, 0]))

    def test_sort_by(self, table):
        out = table.sort_by("value", descending=True)
        assert list(out.column("value")) == [60.0, 50.0, 40.0, 30.0, 20.0, 10.0]

    def test_head(self, table):
        assert len(table.head(2)) == 2

    def test_vstack(self, table):
        stacked = ColumnTable.vstack([table, table])
        assert len(stacked) == 12
        with pytest.raises(ValueError):
            ColumnTable.vstack([table, ColumnTable({"other": [1]})])

    def test_vstack_empty(self):
        assert len(ColumnTable.vstack([])) == 0

    def test_to_rows(self, table):
        rows = table.head(2).to_rows()
        assert rows == [{"key": 1, "value": 10.0}, {"key": 2, "value": 20.0}]


class TestGroupBy:
    def test_mean(self, table):
        out = table.group_by("key", {"value": "mean"})
        assert list(out.column("key")) == [1, 2, 3]
        assert list(out.column("value_mean")) == pytest.approx(
            [100 / 3, 35.0, 40.0]
        )

    def test_sum_and_count(self, table):
        out = table.group_by("key", {"value": "sum"})
        assert list(out.column("value_sum")) == [100.0, 70.0, 40.0]
        out = table.group_by("key", {"value": "count"})
        assert list(out.column("value_count")) == [3.0, 2.0, 1.0]

    @pytest.mark.parametrize("agg,expected", [("min", 10.0), ("max", 60.0), ("median", 30.0)])
    def test_order_statistics(self, table, agg, expected):
        out = table.group_by("key", {"value": agg})
        assert out.column(f"value_{agg}")[0] == expected

    def test_unknown_aggregator(self, table):
        with pytest.raises(ValueError, match="unknown aggregator"):
            table.group_by("key", {"value": "mode"})


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.floats(-100, 100)),
        min_size=1,
        max_size=60,
    )
)
def test_groupby_sum_conserves_total(pairs):
    keys = [k for k, _ in pairs]
    values = [v for _, v in pairs]
    table = ColumnTable({"k": keys, "v": values})
    out = table.group_by("k", {"v": "sum"})
    assert out.column("v_sum").sum() == pytest.approx(sum(values), abs=1e-6)
