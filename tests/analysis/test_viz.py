"""Tests for the ASCII chart renderers."""

import numpy as np
import pytest

from repro.viz import bar_chart, histogram_chart, line_chart, multi_line_chart, table


class TestLineCharts:
    def test_single_series_renders(self):
        out = line_chart([0, 1, 2], [0.0, 1.0, 2.0], title="t", x_label="x")
        assert "t" in out
        assert "x" in out
        assert "*" in out

    def test_empty_series(self):
        assert "(no data)" in line_chart([], [], title="empty")

    def test_multi_series_distinct_marks(self):
        out = multi_line_chart(
            [0, 1, 2], {"a": [1, 2, 3], "b": [3, 2, 1]}
        )
        assert "* a" in out and "o b" in out
        assert "*" in out and "o" in out

    def test_nan_values_skipped(self):
        out = multi_line_chart([0, 1, 2], {"a": [1.0, float("nan"), 3.0]})
        assert "a" in out  # renders without raising

    def test_constant_series(self):
        out = line_chart([0, 1], [5.0, 5.0])
        assert "*" in out

    def test_axis_bounds_printed(self):
        out = line_chart([10, 90], [0.0, 4.0])
        assert "10" in out and "90" in out


class TestBarChart:
    def test_bars_scale_with_values(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = [l for l in out.splitlines() if "|" in l]
        assert lines[0].count("#") < lines[1].count("#")

    def test_values_printed(self):
        out = bar_chart(["x"], [3.25])
        assert "3.25" in out

    def test_empty(self):
        assert "(no data)" in bar_chart([], [], title="t")


class TestHistogram:
    def test_renders_peak(self):
        lefts = np.arange(0, 100, 10)
        counts = np.zeros(10, dtype=int)
        counts[5] = 50
        out = histogram_chart(lefts, counts, title="h")
        assert "h" in out and "#" in out

    def test_all_zero(self):
        out = histogram_chart([0, 10], [0, 0])
        assert "(no data)" in out


class TestTable:
    def test_columns_aligned(self):
        rows = [{"name": "a", "value": 1}, {"name": "bb", "value": 22}]
        out = table(rows, title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        header = lines[1]
        assert "name" in header and "value" in header

    def test_float_formatting(self):
        out = table([{"v": 3.14159265}])
        assert "3.142" in out

    def test_empty(self):
        assert "(no rows)" in table([], title="t")
