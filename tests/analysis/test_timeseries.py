"""Tests for per-interval aggregation helpers."""

import numpy as np
import pytest

from repro.analysis import (
    count_per_interval,
    interval_index,
    mean_per_interval,
    sum_per_interval,
)
from repro.frames import Trace

from ..conftest import data


class TestIntervalIndex:
    def test_basic(self):
        idx = interval_index(np.array([0, 999_999, 1_000_000]), 0, 1_000_000)
        assert list(idx) == [0, 0, 1]

    def test_offset_start(self):
        idx = interval_index(np.array([5_000_000]), 2_000_000, 1_000_000)
        assert idx[0] == 3

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError):
            interval_index(np.array([0]), 0, 0)


class TestCounts:
    def test_count_per_interval(self):
        trace = Trace.from_rows(
            [data(0, 10, 1), data(100, 10, 1), data(2_000_001, 10, 1)]
        )
        counts = count_per_interval(trace)
        assert list(counts) == [2, 0, 1]

    def test_explicit_window(self):
        trace = Trace.from_rows([data(500_000, 10, 1)])
        counts = count_per_interval(trace, start_us=0, n_intervals=3)
        assert list(counts) == [1, 0, 0]

    def test_frames_before_start_ignored(self):
        trace = Trace.from_rows([data(0, 10, 1), data(3_000_000, 10, 1)])
        counts = count_per_interval(trace, start_us=2_000_000, n_intervals=2)
        assert list(counts) == [0, 1]

    def test_empty(self):
        assert list(count_per_interval(Trace.empty(), n_intervals=2)) == [0, 0]


class TestSumsAndMeans:
    def test_sum_per_interval(self):
        trace = Trace.from_rows([data(0, 10, 1), data(100, 10, 1)])
        sums = sum_per_interval(trace, np.array([1.5, 2.5]))
        assert sums[0] == pytest.approx(4.0)

    def test_values_must_be_parallel(self):
        trace = Trace.from_rows([data(0, 10, 1)])
        with pytest.raises(ValueError):
            sum_per_interval(trace, np.array([1.0, 2.0]))

    def test_mean_per_interval_nan_when_empty(self):
        trace = Trace.from_rows([data(0, 10, 1), data(2_000_000, 10, 1)])
        means = mean_per_interval(trace, np.array([4.0, 8.0]))
        assert means[0] == 4.0
        assert np.isnan(means[1])
        assert means[2] == 8.0
