"""Tests for knee detection and smoothing."""

import numpy as np
import pytest

from repro.analysis import BinnedSeries, find_knee, moving_average


def _series(x, y):
    return BinnedSeries(
        utilization=np.asarray(x, dtype=float),
        value=np.asarray(y, dtype=float),
        count=np.ones(len(x), dtype=np.int64),
    )


class TestMovingAverage:
    def test_constant_preserved(self):
        out = moving_average(np.full(10, 3.0), window=5)
        assert np.allclose(out, 3.0)

    def test_short_input_returned_unchanged(self):
        values = np.array([1.0, 2.0])
        assert np.array_equal(moving_average(values, window=5), values)

    def test_window_one_identity(self):
        values = np.array([1.0, 5.0, 2.0])
        assert np.array_equal(moving_average(values, window=1), values)

    def test_smooths_spike(self):
        values = np.zeros(11)
        values[5] = 10.0
        out = moving_average(values, window=5)
        assert out.max() < 10.0
        assert out.max() == pytest.approx(2.0)


class TestFindKnee:
    def test_rise_then_fall_detected(self):
        x = np.arange(30, 100)
        y = np.where(x <= 84, (x - 30) / 54.0 * 4.9, 4.9 - (x - 84) / 14.0 * 2.1)
        knee = find_knee(_series(x, y), smooth_window=3)
        assert knee is not None
        assert knee.utilization == pytest.approx(84.0, abs=3.0)
        assert knee.is_significant

    def test_monotone_rise_has_no_knee(self):
        x = np.arange(30, 100)
        knee = find_knee(_series(x, (x - 30) * 0.1))
        assert knee is None

    def test_too_short_series(self):
        assert find_knee(_series([1, 2, 3], [1.0, 2.0, 1.0])) is None

    def test_small_drop_not_significant(self):
        x = np.arange(0, 50)
        y = np.where(x <= 40, x.astype(float), 40.0 - (x - 40) * 0.05)
        knee = find_knee(_series(x, y), smooth_window=3)
        if knee is not None:
            assert not knee.is_significant

    def test_drop_fraction_computed(self):
        x = np.arange(0, 30)
        y = np.where(x <= 20, x.astype(float), 20.0 - (x - 20) * 1.5)
        knee = find_knee(_series(x, y), smooth_window=3)
        assert knee is not None
        assert 0.0 < knee.drop_fraction <= 1.0
        assert knee.peak_value > knee.tail_value
