"""Unit and property tests for the columnar Trace container."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frames import FrameRow, FrameType, NodeInfo, NodeRoster, Trace


def _rows(n, channel=1):
    return [
        FrameRow(
            time_us=i * 100,
            ftype=FrameType.DATA,
            rate_mbps=11.0,
            size=500 + i,
            src=10,
            dst=1,
            channel=channel,
            seq=i,
        )
        for i in range(n)
    ]


class TestConstruction:
    def test_from_rows_round_trips(self):
        rows = _rows(5)
        trace = Trace.from_rows(rows)
        assert len(trace) == 5
        assert [r.size for r in trace.iter_rows()] == [r.size for r in rows]
        assert trace.row(3) == rows[3]

    def test_empty(self):
        trace = Trace.empty()
        assert len(trace) == 0
        assert trace.duration_us == 0
        assert trace.is_time_sorted()

    def test_missing_column_rejected(self):
        with pytest.raises(ValueError, match="missing columns"):
            Trace({"time_us": np.array([1])})

    def test_ragged_columns_rejected(self):
        cols = Trace.from_rows(_rows(3)).to_columns()
        cols["size"] = cols["size"][:2]
        with pytest.raises(ValueError, match="length"):
            Trace(cols)

    def test_equality(self):
        a, b = Trace.from_rows(_rows(4)), Trace.from_rows(_rows(4))
        assert a == b
        assert a != Trace.from_rows(_rows(3))


class TestTransforms:
    def test_select(self):
        trace = Trace.from_rows(_rows(10))
        sub = trace.select(trace.size > 504)
        assert len(sub) == 5
        assert sub.size.min() == 505

    def test_select_bad_mask_rejected(self):
        trace = Trace.from_rows(_rows(3))
        with pytest.raises(ValueError):
            trace.select(np.array([1, 0, 1]))  # not boolean
        with pytest.raises(ValueError):
            trace.select(np.array([True, False]))  # wrong length

    def test_sorted_by_time_is_stable(self):
        rows = [
            FrameRow(time_us=5, ftype=FrameType.DATA, rate_mbps=11.0, size=1, src=1, dst=2),
            FrameRow(time_us=5, ftype=FrameType.ACK, rate_mbps=1.0, size=14, src=2, dst=1),
            FrameRow(time_us=1, ftype=FrameType.DATA, rate_mbps=1.0, size=3, src=1, dst=2),
        ]
        out = Trace.from_rows(rows).sorted_by_time()
        assert list(out.time_us) == [1, 5, 5]
        # ties keep original order: DATA then ACK
        assert out.row(1).ftype == FrameType.DATA
        assert out.row(2).ftype == FrameType.ACK

    def test_concatenate_merges_and_sorts(self):
        a = Trace.from_rows(_rows(3, channel=1))
        b = Trace.from_rows(_rows(3, channel=6))
        merged = Trace.concatenate([a, b])
        assert len(merged) == 6
        assert merged.is_time_sorted()
        assert set(np.unique(merged.channel)) == {1, 6}

    def test_concatenate_empty_list(self):
        assert len(Trace.concatenate([])) == 0

    def test_between(self):
        trace = Trace.from_rows(_rows(10))
        window = trace.between(200, 500)
        assert list(window.time_us) == [200, 300, 400]

    def test_only_type_and_channel(self, exchange_trace):
        data = exchange_trace.only_type(FrameType.DATA)
        assert len(data) == 2
        assert len(exchange_trace.only_channel(6)) == 0

    def test_rate_mbps_column(self):
        trace = Trace.from_rows(_rows(2))
        assert list(trace.rate_mbps) == [11.0, 11.0]

    def test_duration(self):
        trace = Trace.from_rows(_rows(5))
        assert trace.duration_us == 400


class TestRoster:
    def test_ap_and_station_partition(self, tiny_roster):
        assert tiny_roster.ap_ids == [1]
        assert tiny_roster.station_ids == [10, 11]
        assert len(tiny_roster) == 3

    def test_conflicting_entry_rejected(self, tiny_roster):
        with pytest.raises(ValueError, match="conflicting"):
            tiny_roster.add(NodeInfo(node_id=1, is_ap=False))

    def test_idempotent_re_add(self, tiny_roster):
        tiny_roster.add(NodeInfo(node_id=1, is_ap=True, name="ap-1"))
        assert len(tiny_roster) == 3

    def test_merged_with(self, tiny_roster):
        other = NodeRoster([NodeInfo(node_id=20, is_ap=False)])
        merged = tiny_roster.merged_with(other)
        assert 20 in merged and 1 in merged
        assert len(tiny_roster) == 3  # original untouched

    def test_get_default(self, tiny_roster):
        assert tiny_roster.get(999) is None


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=0, max_size=50))
def test_sort_permutation_preserves_multiset(times):
    rows = [
        FrameRow(time_us=t, ftype=FrameType.DATA, rate_mbps=11.0, size=100, src=1, dst=2)
        for t in times
    ]
    out = Trace.from_rows(rows).sorted_by_time()
    assert sorted(times) == list(out.time_us)
    assert out.is_time_sorted()
