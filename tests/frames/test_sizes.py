"""Unit and property tests for the S/M/L/XL size classes (paper §6)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frames import SizeClass, size_class, size_class_array


class TestBoundaries:
    """The paper's class bounds: S 0-400, M 401-800, L 801-1200, XL >1200."""

    @pytest.mark.parametrize(
        "size,expected",
        [
            (0, SizeClass.S),
            (400, SizeClass.S),
            (401, SizeClass.M),
            (800, SizeClass.M),
            (801, SizeClass.L),
            (1200, SizeClass.L),
            (1201, SizeClass.XL),
            (1500, SizeClass.XL),
            (65535, SizeClass.XL),
        ],
    )
    def test_boundary(self, size, expected):
        assert size_class(size) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            size_class(-1)

    def test_negative_array_rejected(self):
        with pytest.raises(ValueError):
            size_class_array(np.array([100, -5]))


class TestVectorised:
    def test_matches_scalar_on_boundaries(self):
        sizes = np.array([0, 400, 401, 800, 801, 1200, 1201, 9000])
        vec = size_class_array(sizes)
        assert [SizeClass(int(v)) for v in vec] == [size_class(int(s)) for s in sizes]

    def test_dtype_is_compact(self):
        assert size_class_array(np.array([1, 2, 3])).dtype == np.uint8

    def test_empty(self):
        assert len(size_class_array(np.array([], dtype=np.int64))) == 0


@given(st.integers(min_value=0, max_value=100_000))
def test_scalar_vector_agree(size):
    assert size_class_array(np.array([size]))[0] == int(size_class(size))


@given(st.integers(min_value=0, max_value=100_000))
def test_class_ordering_monotone(size):
    """A larger frame never gets a smaller class."""
    assert int(size_class(size + 1)) >= int(size_class(size))
