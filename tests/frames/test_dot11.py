"""Unit tests for the 802.11 frame taxonomy."""

import pytest

from repro.frames import (
    DOT11_RATES_MBPS,
    FrameType,
    code_to_rate,
    frame_type_from_dot11,
    is_control,
    is_data,
    is_management,
    rate_to_code,
)


class TestRateCodes:
    def test_all_80211b_rates_round_trip(self):
        for code, rate in enumerate(DOT11_RATES_MBPS):
            assert rate_to_code(rate) == code
            assert code_to_rate(code) == rate

    def test_rates_are_the_80211b_set(self):
        assert DOT11_RATES_MBPS == (1.0, 2.0, 5.5, 11.0)

    @pytest.mark.parametrize("bad", [0.0, 6.0, 54.0, -1.0, 10.999])
    def test_non_80211b_rate_rejected(self, bad):
        with pytest.raises(ValueError):
            rate_to_code(bad)

    def test_integer_rates_accepted(self):
        assert rate_to_code(11) == 3
        assert rate_to_code(1) == 0


class TestFrameTypeMapping:
    @pytest.mark.parametrize("ftype", list(FrameType))
    def test_dot11_round_trip(self, ftype):
        t, s = ftype.dot11_type_subtype
        assert frame_type_from_dot11(t, s) == ftype

    def test_unknown_management_subtype_collapses_to_mgmt(self):
        assert frame_type_from_dot11(0, 4) == FrameType.MGMT  # probe request

    def test_unknown_data_subtype_collapses_to_data(self):
        assert frame_type_from_dot11(2, 8) == FrameType.DATA  # QoS data

    def test_unknown_control_subtype_rejected(self):
        with pytest.raises(ValueError):
            frame_type_from_dot11(1, 0)

    def test_reserved_type_rejected(self):
        with pytest.raises(ValueError):
            frame_type_from_dot11(3, 0)


class TestPredicates:
    def test_control_frames(self):
        assert is_control(FrameType.ACK)
        assert is_control(FrameType.RTS)
        assert is_control(FrameType.CTS)
        assert not is_control(FrameType.DATA)
        assert not is_control(FrameType.BEACON)

    def test_management_frames(self):
        assert is_management(FrameType.BEACON)
        assert is_management(FrameType.MGMT)
        assert not is_management(FrameType.ACK)

    def test_data_frames(self):
        assert is_data(FrameType.DATA)
        assert not is_data(FrameType.MGMT)
