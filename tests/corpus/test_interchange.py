"""Interchange fidelity: every container yields the same decoded trace.

The corpus accepts captures in classic pcap and RFC 1761 snoop, each
optionally gzipped.  ``write_trace`` routes by extension and
``read_trace`` sniffs content, so the four containers must round-trip
**field-identical** — same schema columns, bit for bit — or analysis
results would depend on which sniffer wrote the file.
"""

import gzip
import struct

import numpy as np
import pytest

from repro.corpus import (
    SnoopDatalinkType,
    detect_format,
    read_snoop,
    write_snoop,
)
from repro.corpus.snoop import SNOOP_IDENT, SNOOP_VERSION
from repro.frames import TRACE_SCHEMA
from repro.pcap import read_trace, write_trace

from .conftest import burst_trace

SUFFIXES = (".pcap", ".pcap.gz", ".snoop", ".snoop.gz")


def assert_traces_identical(a, b):
    assert len(a) == len(b)
    for name, _ in TRACE_SCHEMA:
        assert np.array_equal(a.column(name), b.column(name)), name


@pytest.fixture
def trace():
    return burst_trace(channel=6, t0_us=1_000_000)


def test_all_containers_field_identical(tmp_path, trace):
    # The reference is the *pcap read-back*, not the in-memory trace:
    # the 802.11 encoding itself drops what the air never carries
    # (an ACK has no transmitter address), identically in every
    # container — interchange fidelity means the containers agree.
    reference = None
    for suffix in SUFFIXES:
        path = tmp_path / f"capture{suffix}"
        n = write_trace(trace, path)
        assert n == len(trace)
        decoded = read_trace(path)
        if reference is None:
            reference = decoded
        else:
            assert_traces_identical(decoded, reference)
    assert len(reference) == len(trace)
    assert np.array_equal(reference.column("time_us"), trace.column("time_us"))


@pytest.mark.parametrize("suffix", SUFFIXES)
def test_detect_format_by_content(tmp_path, trace, suffix):
    # Deliberately misleading extension: detection sniffs bytes.
    path = tmp_path / "mystery.bin"
    staged = tmp_path / f"staged{suffix}"
    write_trace(trace, staged)
    path.write_bytes(staged.read_bytes())
    name, compressed = detect_format(path)
    assert name == ("snoop" if "snoop" in suffix else "pcap")
    assert compressed == suffix.endswith(".gz")


def test_snoop_header_layout(tmp_path, trace):
    """The on-disk snoop header is RFC 1761: ident, version 2, datalink."""
    path = tmp_path / "capture.snoop"
    write_snoop(trace, path)
    raw = path.read_bytes()
    ident, version, datalink = struct.unpack(">8sLL", raw[:16])
    assert ident == SNOOP_IDENT
    assert version == SNOOP_VERSION
    assert datalink == SnoopDatalinkType.IEEE_802_11_RADIOTAP


def test_snoop_records_are_padded_to_four_bytes(tmp_path, trace):
    path = tmp_path / "capture.snoop"
    write_snoop(trace, path)
    raw = path.read_bytes()
    pos = 16
    records = 0
    while pos < len(raw):
        orig, incl, rec_len, drops, _, _ = struct.unpack(
            ">LLLLLL", raw[pos : pos + 24]
        )
        assert rec_len == 24 + incl + (-incl % 4)
        assert rec_len % 4 == 0
        assert drops == 0
        records += 1
        pos += rec_len
    assert pos == len(raw)
    assert records == len(trace)


def test_read_snoop_direct(tmp_path, trace):
    snoop_path = tmp_path / "capture.snoop"
    pcap_path = tmp_path / "capture.pcap"
    write_snoop(trace, snoop_path)
    write_trace(trace, pcap_path)
    assert_traces_identical(read_snoop(snoop_path), read_trace(pcap_path))


def test_gzip_output_is_deterministic(tmp_path, trace):
    """mtime is zeroed so byte-identical traces hash identically."""
    a, b = tmp_path / "a.pcap.gz", tmp_path / "b.pcap.gz"
    write_trace(trace, a)
    write_trace(trace, b)
    assert a.read_bytes() == b.read_bytes()


def test_gzip_actually_compresses_roundtrips(tmp_path, trace):
    path = tmp_path / "capture.snoop.gz"
    write_trace(trace, path)
    plain = tmp_path / "capture.snoop"
    write_trace(trace, plain)
    assert gzip.decompress(path.read_bytes()) == plain.read_bytes()


def test_unknown_extension_defaults_to_pcap(tmp_path, trace):
    path = tmp_path / "capture.cap"
    write_trace(trace, path)
    name, compressed = detect_format(path)
    assert (name, compressed) == ("pcap", False)
    assert len(read_trace(path)) == len(trace)
