"""Query-planned analysis: warm runs dispatch nothing, keys invalidate.

The acceptance bar from the issue: a repeated ``analyze_corpus`` over
an unchanged corpus dispatches **zero** captures, and deleting exactly
one stored analysis recomputes exactly that one.
"""

import pytest

from repro.core.report import CongestionReport
from repro.corpus import (
    AnalysisStore,
    CorpusIndex,
    analysis_key,
    analyze_corpus,
    plan_analysis,
)

from .conftest import write_capture

SALT = "test-salt"  # pin: key stability under the repo's real salt is
# covered by test_salt_change_invalidates below.


@pytest.fixture
def analyzed(corpus_dir):
    """A corpus analyzed once (cold), serially for determinism."""
    first = analyze_corpus(corpus_dir, workers=1, salt=SALT)
    return corpus_dir, first


class TestAnalysisKey:
    def test_every_ingredient_changes_the_key(self):
        base = analysis_key("hash", salt=SALT)
        assert analysis_key("hash", salt=SALT) == base
        assert analysis_key("other", salt=SALT) != base
        assert analysis_key("hash", salt="other") != base
        assert analysis_key("hash", min_count=9, salt=SALT) != base
        assert analysis_key("hash", consumers=("x",), salt=SALT) != base

    def test_key_is_a_full_sha256(self):
        key = analysis_key("hash", salt=SALT)
        assert len(key) == 64
        int(key, 16)


class TestColdAndWarmRuns:
    def test_cold_run_dispatches_everything(self, analyzed):
        _, first = analyzed
        assert first.matched == 3
        assert first.cached == 0
        assert first.dispatched == 3
        assert len(first.reports) == 3
        assert not first.failures
        assert all(
            isinstance(r, CongestionReport) for r in first.reports.values()
        )

    def test_warm_run_dispatches_zero(self, analyzed):
        corpus_dir, first = analyzed
        second = analyze_corpus(corpus_dir, workers=1, salt=SALT)
        assert second.dispatched == 0
        assert second.cached == 3
        assert sorted(second.reports) == sorted(first.reports)
        # Served reports carry the same headline numbers.
        for path, report in first.reports.items():
            assert (
                second.reports[path].summary.n_frames
                == report.summary.n_frames
            )

    def test_deleting_one_record_recomputes_exactly_one(self, analyzed):
        corpus_dir, _ = analyzed
        index = CorpusIndex(corpus_dir)
        store = AnalysisStore(corpus_dir)
        victim = next(
            r for r in index.records().values() if r.path == "late.pcap.gz"
        )
        store.drop(analysis_key(victim.content_hash, salt=SALT))
        rerun = analyze_corpus(corpus_dir, workers=1, salt=SALT)
        assert rerun.dispatched == 1
        assert rerun.cached == 2
        assert "late.pcap.gz" in rerun.reports

    def test_salt_change_invalidates_everything(self, analyzed):
        corpus_dir, _ = analyzed
        rerun = analyze_corpus(corpus_dir, workers=1, salt="new-salt")
        assert rerun.dispatched == 3
        assert rerun.cached == 0

    def test_new_capture_dispatches_only_itself(self, analyzed):
        corpus_dir, _ = analyzed
        write_capture(corpus_dir / "fresh.pcap", channel=3, t0_us=1_000_000)
        rerun = analyze_corpus(corpus_dir, workers=1, salt=SALT)
        assert rerun.dispatched == 1
        assert rerun.cached == 3
        assert "fresh.pcap" in rerun.reports

    def test_query_narrows_the_run(self, corpus_dir):
        run = analyze_corpus(corpus_dir, "channel=6", workers=1, salt=SALT)
        assert run.matched == 1
        assert sorted(run.reports) == ["day1/morning.pcap"]
        # The other captures were never analyzed — a full run still
        # has work to do for exactly those two.
        full = analyze_corpus(corpus_dir, workers=1, salt=SALT)
        assert full.cached == 1
        assert full.dispatched == 2

    def test_damaged_capture_skipped_not_fatal(self, corpus_dir):
        raw = (corpus_dir / "day1" / "morning.pcap").read_bytes()
        (corpus_dir / "cut.pcap").write_bytes(raw[:-30])
        run = analyze_corpus(corpus_dir, workers=1, salt=SALT)
        assert run.skipped == {"cut.pcap": "truncated"}
        assert run.matched == 4
        assert run.dispatched == 3

    def test_analyses_noted_on_capture_records(self, analyzed):
        corpus_dir, _ = analyzed
        index = CorpusIndex(corpus_dir)
        for record in index.records().values():
            assert record.analyses == (
                analysis_key(record.content_hash, salt=SALT),
            )


class TestPlanOrdering:
    def test_largest_capture_dispatches_first(self, corpus_dir):
        write_capture(corpus_dir / "big.pcap", channel=2, n_pairs=200)
        index = CorpusIndex(corpus_dir)
        index.refresh()
        store = AnalysisStore(corpus_dir)
        plan = plan_analysis(
            store, list(index.records().values()), salt=SALT
        )
        sizes = [record.byte_size for record, _ in plan.to_run]
        assert sizes == sorted(sizes, reverse=True)
        assert plan.to_run[0][0].path == "big.pcap"


class TestRunBatchWiring:
    def test_run_batch_corpus_kwarg(self, corpus_dir):
        from repro.pipeline import run_batch

        results = run_batch(
            corpus=corpus_dir, where="channel=6", max_workers=1
        )
        assert sorted(results) == ["day1/morning.pcap"]
        assert isinstance(
            results["day1/morning.pcap"], CongestionReport
        )

    def test_corpus_excludes_traces(self, corpus_dir):
        from repro.pipeline import run_batch

        with pytest.raises(ValueError, match="one or the other"):
            run_batch({"a": None}, corpus=corpus_dir)

    def test_where_requires_corpus(self):
        from repro.pipeline import run_batch

        with pytest.raises(ValueError, match="corpus"):
            run_batch({}, where="channel=6")

    def test_traces_still_required_without_corpus(self):
        from repro.pipeline import run_batch

        with pytest.raises(TypeError, match="traces"):
            run_batch()


class TestStore:
    def test_corrupt_sidecar_recomputes(self, analyzed):
        corpus_dir, _ = analyzed
        store = AnalysisStore(corpus_dir)
        sidecar = next(store.store_dir.glob("*/*.report.pkl.gz"))
        sidecar.write_bytes(b"garbage")
        rerun = analyze_corpus(corpus_dir, workers=1, salt=SALT)
        assert rerun.dispatched == 1
        assert rerun.cached == 2

    def test_drop_is_idempotent(self, corpus_dir):
        AnalysisStore(corpus_dir).drop("0" * 64)  # nothing to drop: fine

    def test_results_merges_sorted(self, analyzed):
        corpus_dir, first = analyzed
        assert list(first.results) == sorted(first.reports)
