"""The ``repro corpus`` verbs and capture expansion in ``repro analyze``.

All in-process through ``tools.main`` — asserting exit codes, the
machine-parseable analyze summary line, and that "no captures matched"
is a clean diagnostic rather than a traceback.
"""

import pytest

from repro.tools import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCorpusIndex:
    def test_index_reports_catalog_counts(self, corpus_dir, capsys):
        code, out, err = run_cli(capsys, "corpus", "index", str(corpus_dir))
        assert code == 0
        assert "3 capture(s) catalogued" in out
        assert "3 added" in out

    def test_second_index_is_unchanged(self, corpus_dir, capsys):
        run_cli(capsys, "corpus", "index", str(corpus_dir))
        code, out, _ = run_cli(capsys, "corpus", "index", str(corpus_dir))
        assert code == 0
        assert "3 unchanged" in out

    def test_missing_root_is_clean_error(self, tmp_path, capsys):
        code, out, err = run_cli(
            capsys, "corpus", "index", str(tmp_path / "nope")
        )
        assert code == 2
        assert "corpus error" in err
        assert not out


class TestCorpusQuery:
    def test_query_lists_matches_and_count(self, corpus_dir, capsys):
        code, out, _ = run_cli(
            capsys, "corpus", "query", str(corpus_dir),
            "--where", "channel=6 frames>10",
        )
        assert code == 0
        assert "day1/morning.pcap" in out
        assert out.strip().endswith("1 matched")

    def test_bad_query_is_clean_error(self, corpus_dir, capsys):
        code, _, err = run_cli(
            capsys, "corpus", "query", str(corpus_dir),
            "--where", "chanel=6",
        )
        assert code == 2
        assert "corpus error" in err
        assert "channel" in err  # did-you-mean

    def test_no_refresh_serves_stale_catalog(self, corpus_dir, capsys):
        run_cli(capsys, "corpus", "index", str(corpus_dir))
        for name in ("day1/morning.pcap", "day1/night.snoop", "late.pcap.gz"):
            (corpus_dir / name).unlink()
        code, out, _ = run_cli(
            capsys, "corpus", "query", str(corpus_dir), "--no-refresh"
        )
        assert code == 0
        assert out.strip().endswith("3 matched")


class TestCorpusAnalyze:
    def test_summary_line_and_warm_rerun(self, corpus_dir, capsys):
        code, out, _ = run_cli(
            capsys, "corpus", "analyze", str(corpus_dir), "--workers", "1"
        )
        assert code == 0
        assert "3 matched, 0 cached, 3 dispatched, 0 failed" in out
        code, out, _ = run_cli(
            capsys, "corpus", "analyze", str(corpus_dir), "--workers", "1"
        )
        assert code == 0
        assert "3 matched, 3 cached, 0 dispatched, 0 failed" in out

    def test_report_flag_renders(self, corpus_dir, capsys):
        code, out, _ = run_cli(
            capsys, "corpus", "analyze", str(corpus_dir),
            "--where", "channel=6", "--workers", "1", "--report",
        )
        assert code == 0
        assert "1 matched" in out
        assert "Congestion report" in out

    def test_skipped_captures_reported_on_stderr(self, corpus_dir, capsys):
        raw = (corpus_dir / "day1" / "morning.pcap").read_bytes()
        (corpus_dir / "cut.pcap").write_bytes(raw[:-30])
        code, out, err = run_cli(
            capsys, "corpus", "analyze", str(corpus_dir), "--workers", "1"
        )
        assert code == 0  # skips are not failures
        assert "cut.pcap: skipped (truncated)" in err


class TestAnalyzeExpansion:
    def test_directory_argument(self, corpus_dir, capsys):
        code, out, _ = run_cli(
            capsys, "analyze", str(corpus_dir / "day1"), "--workers", "1"
        )
        assert code == 0
        assert out.count("Congestion report") == 2

    def test_glob_pattern(self, corpus_dir, capsys):
        code, out, _ = run_cli(
            capsys, "analyze", str(corpus_dir / "**" / "*.snoop"),
            "--workers", "1",
        )
        assert code == 0
        assert out.count("Congestion report") == 1
        assert "night.snoop" in out

    def test_no_captures_matched_is_clean(self, corpus_dir, capsys):
        code, out, err = run_cli(
            capsys, "analyze", str(corpus_dir / "*.missing")
        )
        assert code == 2
        assert "no captures matched" in err
        assert not out

    def test_empty_directory_is_clean(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code, _, err = run_cli(capsys, "analyze", str(empty))
        assert code == 2
        assert "no captures matched" in err

    def test_missing_file_is_clean(self, tmp_path, capsys):
        code, _, err = run_cli(capsys, "analyze", str(tmp_path / "a.pcap"))
        assert code == 2
        assert "capture not found" in err
