"""Typed damage reports for the interchange containers.

Mirrors ``tests/pcap/test_truncated.py`` for the two new containers: a
snoop capture cut mid-record raises :class:`TruncatedSnoopError` (a
:class:`TruncatedPcapError`, so existing handlers keep working) with
the exact byte offset and clean-frame count, and a gzip stream cut
mid-member reports the *decompressed* offset — after the full clean
prefix has been yielded in streaming mode.
"""

import struct

import pytest

from repro.corpus import TruncatedSnoopError, write_snoop
from repro.pcap import TruncatedPcapError, read_trace, write_trace
from repro.pcap.pcapio import read_trace_batches

from .conftest import burst_trace

N_FRAMES = 20  # 10 DATA/ACK pairs


@pytest.fixture
def trace():
    return burst_trace(channel=6, t0_us=1_000_000)


@pytest.fixture
def snoop_capture(tmp_path, trace):
    """A clean snoop capture plus its per-record header offsets."""
    path = tmp_path / "capture.snoop"
    write_snoop(trace, path)
    raw = path.read_bytes()
    offsets = []
    offset = 16
    while offset < len(raw):
        rec_len = struct.unpack(">L", raw[offset + 8 : offset + 12])[0]
        offsets.append(offset)
        offset += rec_len
    assert len(offsets) == N_FRAMES
    return path, raw, offsets


def collect_until_error(path, batch_frames=4):
    frames = 0
    try:
        for batch in read_trace_batches(path, batch_frames):
            frames += len(batch)
    except TruncatedPcapError as error:
        return frames, error
    return frames, None


class TestTruncatedSnoop:
    def test_cut_record_header(self, snoop_capture, tmp_path):
        path, raw, offsets = snoop_capture
        cut = tmp_path / "cut.snoop"
        cut.write_bytes(raw[: offsets[-1] + 10])  # partial 24-byte header
        with pytest.raises(TruncatedSnoopError) as exc:
            read_trace(cut)
        assert exc.value.byte_offset == offsets[-1]
        assert exc.value.frames_read == N_FRAMES - 1
        assert "truncated record header" in str(exc.value)

    def test_cut_record_body(self, snoop_capture, tmp_path):
        path, raw, offsets = snoop_capture
        cut = tmp_path / "cut.snoop"
        cut.write_bytes(raw[: offsets[-1] + 24 + 5])
        with pytest.raises(TruncatedSnoopError) as exc:
            read_trace(cut)
        assert exc.value.byte_offset == offsets[-1] + 24
        assert exc.value.frames_read == N_FRAMES - 1
        assert "truncated record body" in str(exc.value)

    def test_undecodable_record(self, snoop_capture, tmp_path):
        path, raw, offsets = snoop_capture
        bad = bytearray(raw)
        start = offsets[-1] + 24
        bad[start : start + 8] = b"\xff" * 8
        corrupt = tmp_path / "corrupt.snoop"
        corrupt.write_bytes(bytes(bad))
        with pytest.raises(TruncatedSnoopError, match="undecodable") as exc:
            read_trace(corrupt)
        assert exc.value.byte_offset == offsets[-1]
        assert exc.value.frames_read == N_FRAMES - 1

    def test_bad_record_length_rejected(self, snoop_capture, tmp_path):
        """record_length < 24 + included_length cannot be walked past."""
        path, raw, offsets = snoop_capture
        bad = bytearray(raw)
        struct.pack_into(">L", bad, offsets[0] + 8, 4)
        corrupt = tmp_path / "corrupt.snoop"
        corrupt.write_bytes(bytes(bad))
        with pytest.raises(TruncatedSnoopError, match="invalid record length"):
            read_trace(corrupt)

    def test_streaming_yields_clean_prefix_before_raising(
        self, snoop_capture, tmp_path
    ):
        path, raw, offsets = snoop_capture
        cut = tmp_path / "cut.snoop"
        cut.write_bytes(raw[: offsets[-1] + 24 + 3])
        frames, error = collect_until_error(cut, batch_frames=4)
        assert error is not None
        assert frames == N_FRAMES - 1
        assert error.frames_read == frames

    def test_is_a_truncated_pcap_error(self, snoop_capture, tmp_path):
        """Handlers written for pcap damage catch snoop damage too."""
        path, raw, offsets = snoop_capture
        cut = tmp_path / "cut.snoop"
        cut.write_bytes(raw[: offsets[-1] + 8])
        with pytest.raises(TruncatedPcapError):
            read_trace(cut)
        with pytest.raises(ValueError):
            read_trace(cut)

    def test_bad_ident_and_version(self, snoop_capture, tmp_path):
        path, raw, offsets = snoop_capture
        wrong = tmp_path / "wrong.snoop"
        wrong.write_bytes(b"notsnoop" + raw[8:])
        # A mangled ident no longer *is* a snoop file: the content
        # sniffer falls through to pcap and rejects the magic.
        with pytest.raises(ValueError):
            read_trace(wrong)
        bad_version = bytearray(raw)
        struct.pack_into(">L", bad_version, 8, 9)
        versioned = tmp_path / "versioned.snoop"
        versioned.write_bytes(bytes(bad_version))
        with pytest.raises(ValueError, match="snoop version"):
            read_trace(versioned)


class TestTruncatedGzip:
    @pytest.fixture(params=["capture.pcap.gz", "capture.snoop.gz"])
    def gz_capture(self, request, tmp_path, trace):
        path = tmp_path / request.param
        write_trace(trace, path)
        return path

    def test_cut_gzip_stream_reports_decompressed_offset(
        self, gz_capture, tmp_path, monkeypatch
    ):
        # Small slabs so several reads succeed before the cut: the
        # clean prefix must stream out ahead of the typed error.
        import repro.corpus.snoop as snoop_mod
        import repro.pcap.pcapio as pcapio_mod

        monkeypatch.setattr(pcapio_mod, "_CHUNK_BYTES", 512)
        monkeypatch.setattr(snoop_mod, "_CHUNK_BYTES", 512)
        cut = tmp_path / f"cut-{gz_capture.name}"
        raw = gz_capture.read_bytes()
        cut.write_bytes(raw[: int(len(raw) * 0.6)])
        frames, error = collect_until_error(cut, batch_frames=4)
        assert error is not None
        assert 0 < frames < N_FRAMES  # clean prefix delivered first
        assert error.frames_read == frames
        assert "decompressed byte offset" in str(error)
        assert "corrupt gzip stream" in str(error)

    def test_cut_gzip_header_is_typed(self, gz_capture, tmp_path):
        """Damage before any member data: typed error, zero frames."""
        cut = tmp_path / f"cut-{gz_capture.name}"
        cut.write_bytes(gz_capture.read_bytes()[:6])
        with pytest.raises(TruncatedPcapError) as exc:
            read_trace(cut)
        assert exc.value.frames_read == 0

    def test_clean_gzip_reads_without_error(self, gz_capture):
        assert len(read_trace(gz_capture)) == N_FRAMES
