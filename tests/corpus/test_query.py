"""Query grammar and matching — records in, booleans out, no files.

Every test here operates on hand-built :class:`CaptureRecord` values;
nothing touches a capture file, by construction.
"""

import pytest

from repro.corpus import CaptureRecord, CorpusError, filter_records, parse_query

HOUR_US = 3_600 * 1_000_000


def record(
    path="a.pcap",
    channels=(6,),
    n_frames=100,
    start=13 * HOUR_US,
    end=13 * HOUR_US + 60_000_000,
    file_format="pcap",
    compressed=False,
    status="ok",
    duplicate_paths=(),
):
    return CaptureRecord(
        content_hash=f"hash-{path}",
        path=path,
        file_format=file_format,
        compressed=compressed,
        byte_size=1_000,
        mtime_ns=0,
        n_frames=n_frames,
        time_start_us=start,
        time_end_us=end,
        channels=tuple(channels),
        frames_per_channel={str(c): n_frames for c in channels},
        status=status,
        duplicate_paths=tuple(duplicate_paths),
    )


def matches(where, rec):
    return parse_query(where).matches(rec)


class TestClauses:
    def test_empty_query_matches_everything(self):
        assert matches(None, record())
        assert matches("", record())
        assert matches("   ", record())

    def test_channel_membership(self):
        multi = record(channels=(1, 6))
        assert matches("channel=6", multi)
        assert not matches("channel=11", multi)
        assert matches("channel=11,6", multi)  # any-member semantics
        assert matches("channel!=11", multi)
        assert not matches("channel!=6", multi)

    def test_frames_comparisons_and_suffixes(self):
        rec = record(n_frames=12_000)
        assert matches("frames>10k", rec)
        assert matches("frames>=12000", rec)
        assert matches("frames<0.1M", rec)
        assert not matches("frames<10k", rec)
        assert matches("frames!=1", rec)

    def test_format_compression_agnostic_unless_explicit(self):
        gz = record(file_format="pcap", compressed=True)
        assert matches("format=pcap", gz)
        assert matches("format=pcap.gz", gz)
        assert not matches("format=snoop", gz)
        plain = record(file_format="pcap", compressed=False)
        assert not matches("format=pcap.gz", plain)

    def test_status(self):
        assert matches("status=ok", record())
        assert matches("status!=truncated", record())
        assert not matches("status=truncated", record())

    def test_path_glob_covers_duplicates(self):
        rec = record(path="day1/a.pcap", duplicate_paths=("mirror/a.pcap",))
        assert matches("path=day1/*", rec)
        assert matches("path=mirror/*", rec)
        assert not matches("path=day2/*", rec)
        assert matches("path!=day2/*", rec)

    def test_start_end_absolute(self):
        rec = record(start=10_000_000, end=20_000_000)
        assert matches("start>=10s", rec)
        assert matches("end<=20s", rec)
        assert matches("start>9999999", rec)
        assert not matches("end>20s", rec)

    def test_clauses_and_together(self):
        rec = record(channels=(6,), n_frames=50)
        assert matches("channel=6 frames>10", rec)
        assert not matches("channel=6 frames>100", rec)

    def test_trailing_commas_tolerated(self):
        assert matches("channel=6, frames>10,", record(n_frames=50))


class TestOverlaps:
    def test_time_of_day_window(self):
        rec = record(start=13 * HOUR_US, end=13 * HOUR_US + HOUR_US // 2)
        assert matches("overlaps=13:00-14:00", rec)
        assert matches("overlaps=13:15-13:20", rec)
        assert not matches("overlaps=14:00-15:00", rec)
        # The en dash the paper's prose uses works too.
        assert matches("overlaps=13:00–14:00", rec)

    def test_time_of_day_ignores_the_date(self):
        # Day 3 of the capture, same wall-clock hour.
        rec = record(
            start=3 * 24 * HOUR_US + 13 * HOUR_US,
            end=3 * 24 * HOUR_US + 13 * HOUR_US + HOUR_US // 4,
        )
        assert matches("overlaps=13:00-14:00", rec)

    def test_window_crossing_midnight(self):
        late = record(start=int(23.5 * HOUR_US), end=int(23.75 * HOUR_US))
        early = record(start=HOUR_US // 2, end=HOUR_US)
        midday = record(start=12 * HOUR_US, end=13 * HOUR_US)
        assert matches("overlaps=23:00-01:00", late)
        assert matches("overlaps=23:00-01:00", early)
        assert not matches("overlaps=23:00-01:00", midday)

    def test_capture_span_crossing_midnight(self):
        rec = record(start=int(23.5 * HOUR_US), end=int(24.5 * HOUR_US))
        assert matches("overlaps=00:00-01:00", rec)
        assert matches("overlaps=23:00-23:45", rec)
        assert not matches("overlaps=02:00-03:00", rec)

    def test_absolute_window(self):
        rec = record(start=10_000_000, end=20_000_000)
        assert matches("overlaps=15s-30s", rec)
        assert matches("overlaps=0-10000000", rec)  # touching endpoint
        assert not matches("overlaps=21s-30s", rec)

    def test_unreadable_record_never_overlaps(self):
        rec = record(start=None, end=None, status="unreadable")
        assert not matches("overlaps=13:00-14:00", rec)


class TestErrors:
    def test_unknown_key_suggests(self):
        with pytest.raises(CorpusError, match="chanel"):
            parse_query("chanel=6")
        with pytest.raises(CorpusError, match="channel"):
            parse_query("chanel=6")  # did-you-mean names the fix

    def test_malformed_clause(self):
        with pytest.raises(CorpusError, match="malformed"):
            parse_query("justaword")

    def test_missing_value(self):
        with pytest.raises(CorpusError, match="no value"):
            parse_query("channel=")

    def test_wrong_operator_for_key(self):
        with pytest.raises(CorpusError, match="not valid"):
            parse_query("channel>6")

    def test_bad_format_value_suggests(self):
        with pytest.raises(CorpusError, match="snoop"):
            parse_query("format=snop")

    def test_bad_window(self):
        with pytest.raises(CorpusError, match="window"):
            parse_query("overlaps=13:00")
        with pytest.raises(CorpusError, match="mixes"):
            parse_query("overlaps=13:00-500")

    def test_bad_time_of_day(self):
        with pytest.raises(CorpusError, match="time of day"):
            parse_query("overlaps=25:00-26:00")


def test_filter_records_sorts_by_path():
    records = {
        "h2": record(path="b.pcap", channels=(6,)),
        "h1": record(path="a.pcap", channels=(6,)),
        "h3": record(path="c.pcap", channels=(1,)),
    }
    out = filter_records(records, "channel=6")
    assert [r.path for r in out] == ["a.pcap", "b.pcap"]
    assert len(filter_records(records.values(), None)) == 3
