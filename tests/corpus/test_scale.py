"""Catalog scale: 1000 captures queried without opening capture files.

The issue's acceptance bar: a 1000-capture synthetic corpus answers
channel and time-span queries from the catalog alone.  The test makes
"alone" literal — after one refresh, every capture file is deleted and
the queries still answer.
"""

import pytest

from repro.corpus import CorpusIndex, filter_records

from .conftest import HOUR_US, burst_trace

N_CAPTURES = 1000
CHANNELS = (1, 6, 11)


@pytest.fixture(scope="module")
def big_corpus(tmp_path_factory):
    """1000 tiny captures cycling channels, hours and subdirectories.

    Written raw (one template per channel/hour, retimed by byte patch)
    rather than through ``write_trace`` a thousand times — this fixture
    is about catalog scale, not codec throughput.
    """
    import struct

    from repro.pcap import write_trace

    root = tmp_path_factory.mktemp("big-corpus")
    templates = {}
    for channel in CHANNELS:
        path = root / f"template-{channel}.pcap"
        write_trace(burst_trace(channel, 0, n_pairs=1), path)
        templates[channel] = bytearray(path.read_bytes())
        path.unlink()
    for i in range(N_CAPTURES):
        channel = CHANNELS[i % len(CHANNELS)]
        hour = i % 24
        raw = bytearray(templates[channel])
        # Patch each record's ts_sec (little-endian, offsets 24 and
        # 24 + 16 + incl_len) to place the capture in its hour.
        offset = 24
        while offset < len(raw):
            incl = struct.unpack_from("<I", raw, offset + 8)[0]
            struct.pack_into("<I", raw, offset, hour * 3600 + i)
            offset += 16 + incl
        target = root / f"day{i % 7}" / f"capture-{i:04d}.pcap"
        target.parent.mkdir(exist_ok=True)
        target.write_bytes(bytes(raw))
    index = CorpusIndex(root)
    stats = index.refresh()
    assert stats.scanned == N_CAPTURES
    assert stats.added == N_CAPTURES
    for record in index.records().values():
        (root / record.path).unlink()  # queries must not need these
    return root


def test_channel_query_from_catalog_alone(big_corpus):
    index = CorpusIndex(big_corpus)
    records = index.records()
    assert len(records) == N_CAPTURES
    for channel in CHANNELS:
        matched = filter_records(records, f"channel={channel}")
        # Channels cycle evenly over 1000 captures: 334/333/333.
        assert len(matched) in (333, 334)
        assert all(record.channels == (channel,) for record in matched)


def test_time_span_query_from_catalog_alone(big_corpus):
    records = CorpusIndex(big_corpus).records()
    in_window = filter_records(records, "overlaps=13:00-14:00")
    # Hours cycle 0..23: ~1000/24 captures sit in hour 13.
    assert 35 <= len(in_window) <= 50
    for record in in_window:
        assert 13 * HOUR_US <= record.time_start_us < 14 * HOUR_US


def test_compound_query_from_catalog_alone(big_corpus):
    records = CorpusIndex(big_corpus).records()
    matched = filter_records(
        records, "channel=6 frames>=2 path=day3/*"
    )
    assert matched
    for record in matched:
        assert record.channels == (6,)
        assert record.path.startswith("day3/")


def test_refresh_after_deletion_empties_catalog(big_corpus):
    """The catalog is honest: the next refresh notices the deletion.

    Runs last (name ordering is irrelevant: module-scoped fixture,
    but this test mutates, so it re-checks its own postcondition).
    """
    index = CorpusIndex(big_corpus)
    assert len(index.records()) == N_CAPTURES  # still served pre-refresh
    stats = index.refresh()
    assert stats.removed == N_CAPTURES
    assert index.records() == {}
