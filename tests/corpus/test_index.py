"""Catalog behaviour: incremental refresh, content addressing, damage.

The index answers everything from JSON records — tests that assert
"without opening capture files" literally delete the captures and
query the catalog afterwards.
"""

import json
import os

import pytest

from repro.corpus import CorpusError, CorpusIndex
from repro.corpus.index import INDEX_DIRNAME

from .conftest import HOUR_US, write_capture


def test_refresh_catalogs_every_capture(corpus_dir):
    index = CorpusIndex(corpus_dir)
    stats = index.refresh()
    assert stats.scanned == 3
    assert stats.added == 3
    assert stats.hashed == 3
    assert stats.failed == 0
    records = index.records()
    assert len(records) == 3
    by_path = {r.path: r for r in records.values()}
    assert set(by_path) == {"day1/morning.pcap", "day1/night.snoop", "late.pcap.gz"}
    morning = by_path["day1/morning.pcap"]
    assert morning.status == "ok"
    assert morning.n_frames == 20
    assert morning.channels == (6,)
    assert morning.frames_per_channel == {"6": 20}
    assert morning.time_start_us == 13 * HOUR_US
    assert morning.file_format == "pcap" and not morning.compressed
    gz = by_path["late.pcap.gz"]
    assert gz.file_format == "pcap" and gz.compressed
    assert by_path["day1/night.snoop"].file_format == "snoop"


def test_second_refresh_is_a_fast_path(corpus_dir):
    index = CorpusIndex(corpus_dir)
    index.refresh()
    stats = index.refresh()
    assert stats.hashed == 0  # size+mtime trusted, nothing re-read
    assert stats.unchanged == 3
    assert stats.added == stats.updated == stats.removed == 0


def test_verify_rehashes_everything(corpus_dir):
    index = CorpusIndex(corpus_dir)
    index.refresh()
    stats = index.refresh(verify=True)
    assert stats.hashed == 3
    assert stats.unchanged == 3


def test_rename_is_a_metadata_update(corpus_dir):
    index = CorpusIndex(corpus_dir)
    index.refresh()
    hashes = set(index.records())
    (corpus_dir / "day1" / "morning.pcap").rename(corpus_dir / "renamed.pcap")
    stats = index.refresh()
    assert stats.updated == 1
    assert stats.added == stats.removed == 0
    assert set(index.records()) == hashes  # same content, same key
    by_path = {r.path: r for r in index.records().values()}
    assert "renamed.pcap" in by_path


def test_duplicates_collapse_into_one_record(corpus_dir):
    source = corpus_dir / "day1" / "morning.pcap"
    copy = corpus_dir / "day1" / "copy.pcap"
    copy.write_bytes(source.read_bytes())
    index = CorpusIndex(corpus_dir)
    index.refresh()
    records = index.records()
    assert len(records) == 3  # 4 files, 3 distinct contents
    dup = next(r for r in records.values() if r.duplicate_paths)
    # Sorted walk: copy.pcap sorts first and becomes the primary.
    assert dup.path == "day1/copy.pcap"
    assert dup.duplicate_paths == ("day1/morning.pcap",)


def test_deleted_capture_drops_its_record(corpus_dir):
    index = CorpusIndex(corpus_dir)
    index.refresh()
    (corpus_dir / "late.pcap.gz").unlink()
    stats = index.refresh()
    assert stats.removed == 1
    assert len(index.records()) == 2


def test_damaged_capture_is_catalogued_not_fatal(corpus_dir):
    raw = (corpus_dir / "day1" / "morning.pcap").read_bytes()
    (corpus_dir / "cut.pcap").write_bytes(raw[:-30])
    index = CorpusIndex(corpus_dir)
    stats = index.refresh()
    assert stats.failed == 1
    record = next(
        r for r in index.records().values() if r.path == "cut.pcap"
    )
    assert record.status == "truncated"
    assert record.error is not None
    assert record.n_frames == 19  # partial stats from the clean prefix


def test_queries_answered_after_captures_deleted(corpus_dir):
    """Records are self-contained: the catalog outlives the captures."""
    index = CorpusIndex(corpus_dir)
    index.refresh()
    for record in index.records().values():
        (corpus_dir / record.path).unlink()
    fresh = CorpusIndex(corpus_dir)  # new instance, catalog only
    records = fresh.records()
    assert len(records) == 3
    assert {r.n_frames for r in records.values()} == {20}


def test_corrupt_record_quarantined(corpus_dir):
    index = CorpusIndex(corpus_dir)
    index.refresh()
    record_path = next(index.index_dir.glob("*/*.json"))
    record_path.write_text("{not json")
    records = index.records()
    assert len(records) == 2
    assert record_path.with_name(record_path.name + ".corrupt").exists()
    # The quarantined capture is re-catalogued on the next refresh.
    stats = index.refresh()
    assert stats.added == 1
    assert len(index.records()) == 3


def test_note_analysis_round_trips(corpus_dir):
    index = CorpusIndex(corpus_dir)
    index.refresh()
    content_hash = next(iter(index.records()))
    index.note_analysis(content_hash, "abc123")
    index.note_analysis(content_hash, "abc123")  # idempotent
    assert index.get(content_hash).analyses == ("abc123",)


def test_index_dir_not_walked_as_captures(corpus_dir):
    index = CorpusIndex(corpus_dir)
    index.refresh()
    # Drop a capture-suffixed file inside the catalog directory.
    decoy = corpus_dir / INDEX_DIRNAME / "decoy.pcap"
    decoy.parent.mkdir(parents=True, exist_ok=True)
    decoy.write_bytes(b"junk")
    stats = index.refresh()
    assert stats.scanned == 3


def test_missing_root_rejected(tmp_path):
    with pytest.raises(CorpusError, match="not a directory"):
        CorpusIndex(tmp_path / "nope")


def test_record_payload_is_plain_json(corpus_dir):
    index = CorpusIndex(corpus_dir)
    index.refresh()
    path = next(index.index_dir.glob("*/*.json"))
    payload = json.loads(path.read_text())
    assert payload["kind"] == "capture"
    assert payload["format"] == 1
    assert payload["content_hash"] == path.stem


def test_touched_file_rehashes_but_stays_unchanged(corpus_dir):
    index = CorpusIndex(corpus_dir)
    index.refresh()
    target = corpus_dir / "day1" / "morning.pcap"
    os.utime(target, ns=(1, 1))  # new mtime, same bytes
    stats = index.refresh()
    assert stats.hashed == 1
    assert stats.updated == 1  # mtime metadata rewritten
    assert len(index.records()) == 3
