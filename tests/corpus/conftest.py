"""Corpus fixtures: small multi-format capture trees built on disk."""

from __future__ import annotations

import pytest

from repro.frames import Trace
from repro.pcap import write_trace

from ..conftest import ack, data

HOUR_US = 3_600 * 1_000_000


def burst_rows(channel, t0_us, n_pairs=10):
    """``n_pairs`` DATA/ACK exchanges on one channel starting at ``t0_us``."""
    rows = []
    t = t0_us
    for i in range(n_pairs):
        rows.append(data(t, src=10, dst=1, seq=i, channel=channel))
        rows.append(ack(t + 1_400, src=1, dst=10, channel=channel))
        t += 10_000
    return rows


def burst_trace(channel, t0_us, n_pairs=10):
    return Trace.from_rows(burst_rows(channel, t0_us, n_pairs))


def write_capture(path, channel=1, t0_us=HOUR_US, n_pairs=10):
    """Write one burst capture; format picked by ``path`` suffix."""
    path.parent.mkdir(parents=True, exist_ok=True)
    write_trace(burst_trace(channel, t0_us, n_pairs), path)
    return path


@pytest.fixture
def corpus_dir(tmp_path):
    """A three-capture corpus spanning formats, channels and hours.

    ======================  =======  ==========  ========
    path                    channel  starts at   format
    ======================  =======  ==========  ========
    ``day1/morning.pcap``   6        13:00       pcap
    ``day1/night.snoop``    1        02:00       snoop
    ``late.pcap.gz``        11       13:30       pcap.gz
    ======================  =======  ==========  ========
    """
    root = tmp_path / "corpus"
    write_capture(root / "day1" / "morning.pcap", channel=6, t0_us=13 * HOUR_US)
    write_capture(root / "day1" / "night.snoop", channel=1, t0_us=2 * HOUR_US)
    write_capture(
        root / "late.pcap.gz", channel=11, t0_us=13 * HOUR_US + HOUR_US // 2
    )
    return root
