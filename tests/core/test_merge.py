"""Tests for multi-sniffer capture fusion."""

import numpy as np
import pytest

from repro.core.merge import coverage_gain, merge_captures
from repro.frames import FrameRow, FrameType, Trace

from ..conftest import ack, data


def _capture(rows, snr=20.0):
    adjusted = [
        FrameRow(
            time_us=r.time_us, ftype=r.ftype, rate_mbps=r.rate_mbps,
            size=r.size, src=r.src, dst=r.dst, retry=r.retry,
            channel=r.channel, seq=r.seq, snr_db=snr,
        )
        for r in rows
    ]
    return Trace.from_rows(adjusted)


class TestMergeCaptures:
    def test_identical_captures_collapse(self):
        rows = [data(0, 10, 1, seq=5), ack(1500, 1, 10)]
        a = _capture(rows, snr=20.0)
        b = _capture(rows, snr=25.0)
        merged = merge_captures([a, b])
        assert len(merged) == 2
        # The stronger-SNR record wins.
        assert merged.snr_db[0] == pytest.approx(25.0)

    def test_disjoint_captures_union(self):
        a = _capture([data(0, 10, 1, seq=1)])
        b = _capture([data(5000, 11, 1, seq=2)])
        merged = merge_captures([a, b])
        assert len(merged) == 2
        assert merged.is_time_sorted()

    def test_partial_overlap(self):
        shared = data(0, 10, 1, seq=1)
        a = _capture([shared, data(5000, 10, 1, seq=2)])
        b = _capture([shared, data(9000, 10, 1, seq=3)])
        merged = merge_captures([a, b])
        assert len(merged) == 3

    def test_same_instant_different_channels_kept(self):
        a = _capture([data(0, 10, 1, seq=1, channel=1)])
        b = _capture([data(0, 10, 1, seq=1, channel=6)])
        assert len(merge_captures([a, b])) == 2

    def test_dedupe_disabled(self):
        rows = [data(0, 10, 1, seq=5)]
        merged = merge_captures([_capture(rows), _capture(rows)], dedupe=False)
        assert len(merged) == 2

    def test_empty_inputs(self):
        assert len(merge_captures([])) == 0
        assert len(merge_captures([Trace.empty(), Trace.empty()])) == 0


class TestCoverageGain:
    def test_gain_from_complementary_sniffers(self):
        """Two sniffers each missing different frames: fusion recovers
        more than either alone (the paper's §4.4 recommendation)."""
        shared = [data(i * 1000, 10, 1, seq=i) for i in range(10)]
        a = _capture(shared[:7])         # missed the tail
        b = _capture(shared[3:])         # missed the head
        gain = coverage_gain([a, b])
        assert gain.fused_frames == 10
        assert gain.best_single == 7
        assert gain.gain_over_best == pytest.approx(10 / 7)

    def test_gain_nan_for_empty(self):
        gain = coverage_gain([Trace.empty()])
        assert np.isnan(gain.gain_over_best)

    def test_fused_never_below_best_single(self, small_scenario):
        # Split the real capture into two overlapping halves by parity.
        trace = small_scenario.trace
        idx = np.arange(len(trace))
        a = trace.take(idx[idx % 3 != 0])
        b = trace.take(idx[idx % 3 != 1])
        gain = coverage_gain([a, b])
        assert gain.fused_frames >= gain.best_single
        assert gain.fused_frames == len(trace)
