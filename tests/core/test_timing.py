"""Tests pinning the Table 2 timing model to the paper's values."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DOT11B_TIMING, TimingParameters, data_frame_duration_us


class TestTable2Constants:
    """Every delay component must match the paper's Table 2 exactly."""

    @pytest.mark.parametrize(
        "name,value",
        [
            ("D_DIFS", 50.0),
            ("D_SIFS", 10.0),
            ("D_RTS", 352.0),
            ("D_CTS", 304.0),
            ("D_ACK", 304.0),
            ("D_BEACON", 304.0),
            ("D_BO", 0.0),
            ("D_PLCP", 192.0),
        ],
    )
    def test_constant(self, name, value):
        assert dict(DOT11B_TIMING.as_table())[name] == value

    def test_control_durations_derive_from_1mbps(self):
        """D_ACK = PLCP + 8*14/1 = 304; D_RTS = PLCP + 8*20/1 = 352."""
        assert DOT11B_TIMING.plcp_us + 8 * 14 / 1.0 == DOT11B_TIMING.ack_us
        assert DOT11B_TIMING.plcp_us + 8 * 20 / 1.0 == DOT11B_TIMING.rts_us

    def test_paper_backoff_range(self):
        assert DOT11B_TIMING.cw_min == 31
        assert DOT11B_TIMING.cw_max == 255


class TestDataFrameDuration:
    """D_DATA(size)(rate) = D_PLCP + 8*(34+size)/rate."""

    @pytest.mark.parametrize(
        "size,rate,expected",
        [
            (1500, 11.0, 192 + 8 * 1534 / 11.0),
            (1500, 1.0, 192 + 8 * 1534 / 1.0),
            (100, 2.0, 192 + 8 * 134 / 2.0),
            (0, 5.5, 192 + 8 * 34 / 5.5),
        ],
    )
    def test_formula(self, size, rate, expected):
        assert data_frame_duration_us(size, rate) == pytest.approx(expected)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            data_frame_duration_us(100, 0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            data_frame_duration_us(-1, 11.0)

    def test_vectorised_matches_scalar(self):
        sizes = np.array([10, 500, 1500])
        rates = np.array([1.0, 5.5, 11.0])
        vec = DOT11B_TIMING.data_frame_duration_us_array(sizes, rates)
        for v, s, r in zip(vec, sizes, rates):
            assert v == pytest.approx(data_frame_duration_us(int(s), float(r)))

    def test_vectorised_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            DOT11B_TIMING.data_frame_duration_us_array(
                np.array([10.0]), np.array([0.0])
            )


@given(
    size=st.integers(min_value=0, max_value=3000),
    rate=st.sampled_from([1.0, 2.0, 5.5, 11.0]),
)
def test_duration_positive_and_bounded_below_by_plcp(size, rate):
    duration = data_frame_duration_us(size, rate)
    assert duration > DOT11B_TIMING.plcp_us


@given(size=st.integers(min_value=0, max_value=3000))
def test_duration_decreases_with_rate(size):
    durations = [data_frame_duration_us(size, r) for r in (1.0, 2.0, 5.5, 11.0)]
    assert durations == sorted(durations, reverse=True)


@given(rate=st.sampled_from([1.0, 2.0, 5.5, 11.0]), size=st.integers(0, 2999))
def test_duration_increases_with_size(rate, size):
    assert data_frame_duration_us(size + 1, rate) > data_frame_duration_us(size, rate)


def test_custom_timing_parameters():
    custom = TimingParameters(plcp_us=96.0)  # short preamble variant
    assert custom.data_frame_duration_us(100, 11.0) == pytest.approx(
        96 + 8 * 134 / 11.0
    )
