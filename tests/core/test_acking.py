"""Tests for the DATA-ACK matcher (paper §6.4 identification rule)."""

import numpy as np

from repro.core import match_acks
from repro.frames import Trace

from ..conftest import ack, beacon, data


class TestMatchAcks:
    def test_simple_pair(self):
        trace = Trace.from_rows([data(0, 10, 1), ack(1000, 1, 10)])
        match = match_acks(trace)
        assert match.acked[0]
        assert match.ack_index[0] == 1
        assert match.ack_time_us[0] == 1000
        assert match.n_acked == 1

    def test_wrong_addressee_not_matched(self):
        # ACK destined to a different sender does not acknowledge row 0.
        trace = Trace.from_rows([data(0, 10, 1), ack(1000, 1, 99)])
        assert not match_acks(trace).acked[0]

    def test_intervening_frame_breaks_atomicity(self):
        trace = Trace.from_rows(
            [data(0, 10, 1), beacon(500, 1), ack(1000, 1, 10)]
        )
        assert match_acks(trace).n_acked == 0

    def test_cross_channel_not_matched(self):
        trace = Trace.from_rows(
            [data(0, 10, 1, channel=1), ack(1000, 1, 10, channel=6)]
        )
        assert match_acks(trace).n_acked == 0

    def test_back_to_back_exchanges(self):
        rows = [
            data(0, 10, 1), ack(1000, 1, 10),
            data(2000, 11, 1), ack(3000, 1, 11),
            data(4000, 12, 1),  # never acked
        ]
        match = match_acks(Trace.from_rows(rows))
        assert list(np.nonzero(match.acked)[0]) == [0, 2]
        assert not match.acked[4]

    def test_unsorted_input_sorted_internally(self):
        trace = Trace.from_rows([ack(1000, 1, 10), data(0, 10, 1)])
        assert match_acks(trace).n_acked == 1

    def test_tiny_traces(self):
        assert match_acks(Trace.empty()).n_acked == 0
        assert match_acks(Trace.from_rows([data(0, 10, 1)])).n_acked == 0

    def test_ack_rows_themselves_never_acked(self):
        trace = Trace.from_rows([data(0, 10, 1), ack(1000, 1, 10), ack(2000, 1, 10)])
        match = match_acks(trace)
        assert not match.acked[1] and not match.acked[2]
