"""Tests for throughput/goodput computation (paper §5.2, Fig 6)."""

import numpy as np
import pytest

from repro.core import (
    goodput_per_second,
    throughput_per_second,
    throughput_vs_utilization,
)
from repro.frames import Trace

from ..conftest import ack, beacon, data


class TestThroughputPerSecond:
    def test_counts_all_bits_including_retries(self):
        rows = [
            data(0, 10, 1, size=1000),
            data(100_000, 10, 1, size=1000, retry=True),  # retransmission counts
        ]
        tput = throughput_per_second(Trace.from_rows(rows))
        assert tput[0] == pytest.approx(2 * 1000 * 8 / 1e6)

    def test_control_frames_use_fixed_sizes(self):
        trace = Trace.from_rows([ack(0, 1, 10)])
        assert throughput_per_second(trace)[0] == pytest.approx(14 * 8 / 1e6)

    def test_second_boundaries(self):
        rows = [data(0, 10, 1, size=500), data(1_000_000, 10, 1, size=700)]
        tput = throughput_per_second(Trace.from_rows(rows))
        assert tput[0] == pytest.approx(500 * 8 / 1e6)
        assert tput[1] == pytest.approx(700 * 8 / 1e6)


class TestGoodputPerSecond:
    def test_unacked_data_excluded(self):
        rows = [
            data(0, 10, 1, size=1000),
            ack(1400, 1, 10),
            data(500_000, 10, 1, size=900),  # no ACK follows: wasted bits
        ]
        trace = Trace.from_rows(rows)
        gput = goodput_per_second(trace)
        expected = (1000 * 8 + 14 * 8) / 1e6
        assert gput[0] == pytest.approx(expected)

    def test_control_and_beacons_always_count(self):
        rows = [beacon(0, 1), ack(5000, 1, 10)]
        gput = goodput_per_second(Trace.from_rows(rows))
        assert gput[0] == pytest.approx((80 * 8 + 14 * 8) / 1e6)

    def test_goodput_never_exceeds_throughput(self, small_scenario):
        trace = small_scenario.trace
        tput = throughput_per_second(trace)
        gput = goodput_per_second(trace, n_seconds=len(tput))
        assert np.all(gput <= tput + 1e-12)


class TestFigure6:
    def test_binned_series_aligned(self, small_scenario):
        result = throughput_vs_utilization(small_scenario.trace)
        assert len(result.throughput_mbps) == len(result.goodput_mbps)
        assert np.array_equal(
            result.throughput_mbps.utilization, result.goodput_mbps.utilization
        )
        # goodput <= throughput bin by bin
        assert np.all(result.goodput_mbps.value <= result.throughput_mbps.value + 1e-9)

    def test_peak_reports_maximum(self, small_scenario):
        result = throughput_vs_utilization(small_scenario.trace)
        util, peak = result.peak()
        assert peak == pytest.approx(result.throughput_mbps.value.max())
        assert util in result.throughput_mbps.utilization
