"""Tests for the per-frame CBT equations (paper Eq 2-7)."""

import numpy as np
import pytest

from repro.core import (
    DOT11B_TIMING,
    cbt_by_second,
    cbt_by_second_per_rate,
    frame_cbt_us,
    trace_cbt_us,
)
from repro.frames import FrameRow, FrameType, Trace

from ..conftest import ack, beacon, cts, data, rts


class TestFrameCbt:
    """Equations 2-6, against hand-computed values."""

    def test_data_frame_eq2(self):
        # CBT = DIFS + PLCP + 8*(34+1500)/11
        expected = 50 + 192 + 8 * 1534 / 11.0
        assert frame_cbt_us(FrameType.DATA, 1500, 11.0) == pytest.approx(expected)

    def test_rts_eq3_no_ifs(self):
        assert frame_cbt_us(FrameType.RTS) == 352.0

    def test_cts_eq4(self):
        assert frame_cbt_us(FrameType.CTS) == 10 + 304.0

    def test_ack_eq5(self):
        assert frame_cbt_us(FrameType.ACK) == 10 + 304.0

    def test_beacon_eq6(self):
        assert frame_cbt_us(FrameType.BEACON) == 50 + 304.0

    def test_mgmt_treated_like_data(self):
        assert frame_cbt_us(FrameType.MGMT, 64, 1.0) == pytest.approx(
            50 + 192 + 8 * 98 / 1.0
        )


class TestTraceCbt:
    def test_vector_matches_scalar(self, exchange_trace):
        vec = trace_cbt_us(exchange_trace)
        for value, row in zip(vec, exchange_trace.iter_rows()):
            assert value == pytest.approx(
                frame_cbt_us(row.ftype, row.size, row.rate_mbps)
            )

    def test_empty_trace(self):
        assert len(trace_cbt_us(Trace.empty())) == 0


class TestCbtBySecond:
    def test_single_second_totals_eq7(self):
        rows = [
            data(0, 10, 1, size=1000, rate=11.0),
            ack(1000, 1, 10),
            data(500_000, 10, 1, size=1000, rate=11.0),
        ]
        trace = Trace.from_rows(rows)
        per_second = cbt_by_second(trace)
        d = frame_cbt_us(FrameType.DATA, 1000, 11.0)
        a = frame_cbt_us(FrameType.ACK)
        assert per_second.shape == (1,)
        assert per_second[0] == pytest.approx(2 * d + a)

    def test_spans_multiple_seconds(self):
        rows = [data(0, 10, 1), data(2_500_000, 10, 1)]
        per_second = cbt_by_second(Trace.from_rows(rows))
        assert len(per_second) == 3
        assert per_second[1] == 0.0
        assert per_second[0] > 0 and per_second[2] > 0

    def test_n_seconds_padding(self):
        trace = Trace.from_rows([data(0, 10, 1)])
        padded = cbt_by_second(trace, n_seconds=5)
        assert padded.shape == (5,)
        assert np.all(padded[1:] == 0)

    def test_unsorted_input_handled(self):
        rows = [data(1_500_000, 10, 1), data(0, 10, 1)]
        out = cbt_by_second(Trace.from_rows(rows))
        assert len(out) == 2

    def test_empty(self):
        assert len(cbt_by_second(Trace.empty())) == 0
        assert cbt_by_second(Trace.empty(), n_seconds=3).shape == (3,)


class TestCbtPerRate:
    def test_split_sums_to_data_total(self):
        rows = [
            data(0, 10, 1, size=500, rate=1.0),
            data(100_000, 10, 1, size=500, rate=11.0),
            ack(200_000, 1, 10),  # excluded: control
            beacon(300_000, 1),   # excluded: management
        ]
        trace = Trace.from_rows(rows)
        per_rate = cbt_by_second_per_rate(trace)
        assert per_rate.shape == (1, 4)
        data_only = trace.only_type(FrameType.DATA)
        assert per_rate.sum() == pytest.approx(trace_cbt_us(data_only).sum())
        # 1 Mbps column (code 0) and 11 Mbps column (code 3) populated.
        assert per_rate[0, 0] > per_rate[0, 3] > 0
        assert per_rate[0, 1] == per_rate[0, 2] == 0

    def test_slow_rate_occupies_more_time(self):
        rows = [
            data(0, 10, 1, size=1000, rate=1.0),
            data(100_000, 10, 1, size=1000, rate=11.0),
        ]
        per_rate = cbt_by_second_per_rate(Trace.from_rows(rows))
        assert per_rate[0, 0] > 5 * per_rate[0, 3]

    def test_empty(self):
        assert cbt_by_second_per_rate(Trace.empty()).shape == (0, 4)
