"""Tests for acceptance-delay reconstruction (paper §6.5, Fig 15)."""

import numpy as np
import pytest

from repro.core import acceptance_delay_vs_utilization, acceptance_delays
from repro.frames import Trace

from ..conftest import ack, data


class TestAcceptanceDelays:
    def test_single_attempt_delay(self):
        rows = [data(0, 10, 1, seq=4), ack(1_500, 1, 10)]
        delays = acceptance_delays(Trace.from_rows(rows))
        assert len(delays) == 1
        assert delays.delay_us[0] == pytest.approx(1_500)
        assert delays.first_attempt_us[0] == 0

    def test_retry_chain_measured_from_first_attempt(self):
        """Retries share a seq; delay runs from the first attempt."""
        rows = [
            data(0, 10, 1, seq=4),                       # first attempt, no ACK
            data(9_000, 10, 1, seq=4, retry=True),       # retry
            ack(10_500, 1, 10),                           # acked now
        ]
        delays = acceptance_delays(Trace.from_rows(rows))
        assert len(delays) == 1
        assert delays.delay_us[0] == pytest.approx(10_500)

    def test_rate_of_delivered_frame_recorded(self):
        """A chain that fell back 11 -> 1 Mbps reports the delivered rate."""
        rows = [
            data(0, 10, 1, seq=4, rate=11.0),
            data(9_000, 10, 1, seq=4, rate=1.0, retry=True),
            ack(21_000, 1, 10),
        ]
        delays = acceptance_delays(Trace.from_rows(rows))
        assert delays.rate_code[0] == 0  # 1 Mbps

    def test_independent_chains_by_seq(self):
        rows = [
            data(0, 10, 1, seq=1), ack(1_500, 1, 10),
            data(5_000, 10, 1, seq=2), ack(6_900, 1, 10),
        ]
        delays = acceptance_delays(Trace.from_rows(rows))
        assert sorted(delays.delay_us.tolist()) == [1_500, 1_900]

    def test_chain_with_missed_first_attempt(self):
        """A retry whose first attempt the sniffer missed still yields a
        (conservative) delay measured from the earliest captured frame."""
        rows = [data(9_000, 10, 1, seq=4, retry=True), ack(10_500, 1, 10)]
        delays = acceptance_delays(Trace.from_rows(rows))
        assert delays.delay_us[0] == pytest.approx(1_500)

    def test_empty(self):
        assert len(acceptance_delays(Trace.empty())) == 0


class TestFigure15:
    def test_categories_and_units(self):
        rows = [
            data(0, 10, 1, size=200, rate=1.0, seq=1), ack(3_000, 1, 10),
            data(100_000, 10, 1, size=1400, rate=11.0, seq=2), ack(102_000, 1, 10),
        ]
        series = acceptance_delay_vs_utilization(Trace.from_rows(rows))
        assert set(series.names) == {"S-1", "XL-1", "S-11", "XL-11"}
        # Delays are in seconds on the y axis.
        assert series["S-1"].value.sum() == pytest.approx(0.003)
        assert series["XL-11"].value.sum() == pytest.approx(0.002)

    def test_mean_delay_weighted(self):
        rows = [
            data(0, 10, 1, size=200, rate=1.0, seq=1), ack(4_000, 1, 10),
            data(1_000_000, 10, 1, size=200, rate=1.0, seq=2), ack(1_002_000, 1, 10),
        ]
        series = acceptance_delay_vs_utilization(Trace.from_rows(rows))
        mean = series.mean_delay("S-1", lo=0.0, hi=100.0)
        assert mean == pytest.approx(0.003)

    def test_slow_frames_have_larger_delay_on_simulated_trace(self, small_scenario):
        """The paper's F5: delays at 1 Mbps exceed delays at 11 Mbps."""
        delays = acceptance_delays(small_scenario.trace)
        slow = delays.delay_us[delays.rate_code == 0]
        fast = delays.delay_us[delays.rate_code == 3]
        if len(slow) >= 5 and len(fast) >= 5:
            assert np.median(slow) > np.median(fast)


class TestSeqRecycling:
    def test_recycled_seq_does_not_inherit_stale_chain(self):
        """802.11 seqs wrap at 4096: a retry of a recycled seq whose
        first attempt went uncaptured must not inherit the timestamp of
        the previous chain with the same (src, dst, seq) key."""
        rows = [
            data(0, 10, 1, seq=4),                      # chain 1: never acked
            # ... 30 seconds later the seq number has been recycled ...
            data(30_000_000, 10, 1, seq=4, retry=True),  # chain 2, 1st missed
            ack(30_001_500, 1, 10),
        ]
        delays = acceptance_delays(Trace.from_rows(rows))
        assert len(delays) == 1
        assert delays.delay_us[0] == pytest.approx(1_500)

    def test_recent_chain_still_linked(self):
        rows = [
            data(0, 10, 1, seq=4),
            data(900_000, 10, 1, seq=4, retry=True),
            ack(902_000, 1, 10),
        ]
        delays = acceptance_delays(Trace.from_rows(rows))
        assert delays.delay_us[0] == pytest.approx(902_000)
