"""Tests for per-station statistics and Jain fairness."""

import numpy as np
import pytest

from repro.core.stations import jain_fairness_index, station_stats
from repro.frames import Trace

from ..conftest import ack, data, rts


class TestJainIndex:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_fairness_index(np.array([5.0, 5.0, 5.0])) == pytest.approx(1.0)

    def test_single_hog_approaches_1_over_n(self):
        index = jain_fairness_index(np.array([10.0, 0.0, 0.0, 0.0]))
        assert index == pytest.approx(0.25)

    def test_monotone_in_imbalance(self):
        fair = jain_fairness_index(np.array([4.0, 4.0]))
        skewed = jain_fairness_index(np.array([7.0, 1.0]))
        assert skewed < fair

    def test_all_zero_is_fair(self):
        assert jain_fairness_index(np.zeros(3)) == 1.0

    def test_empty_is_nan(self):
        assert np.isnan(jain_fairness_index(np.array([])))


class TestStationStats:
    def test_per_station_accounting(self, tiny_roster):
        rows = [
            data(0, 10, 1, size=1000), ack(1500, 1, 10),
            data(5000, 10, 1, size=500),            # unacked
            data(9000, 11, 1, size=200), ack(9900, 1, 11),
        ]
        stats = station_stats(Trace.from_rows(rows), tiny_roster)
        table = stats.table
        by_station = dict(zip(table.column("station"), range(len(table))))
        i10, i11 = by_station[10], by_station[11]
        assert table.column("tx_frames")[i10] == 2
        assert table.column("acked_frames")[i10] == 1
        assert table.column("acked_bytes")[i10] == 1000
        assert table.column("acked_bytes")[i11] == 200
        assert table.column("airtime_us")[i10] > table.column("airtime_us")[i11]

    def test_rts_airtime_attributed(self, tiny_roster):
        rows = [rts(0, 11, 1)]
        stats = station_stats(Trace.from_rows(rows), tiny_roster)
        idx = list(stats.table.column("station")).index(11)
        assert stats.table.column("airtime_us")[idx] == pytest.approx(352.0)

    def test_share_of(self, tiny_roster):
        rows = [
            data(0, 10, 1, size=300), ack(1000, 1, 10),
            data(5000, 11, 1, size=100), ack(6000, 1, 11),
        ]
        stats = station_stats(Trace.from_rows(rows), tiny_roster)
        assert stats.share_of(10) == pytest.approx(0.75)
        assert stats.share_of(11) == pytest.approx(0.25)
        assert stats.share_of(99) == 0.0

    def test_fairness_on_balanced_trace(self, tiny_roster):
        rows = [
            data(0, 10, 1, size=500), ack(1000, 1, 10),
            data(5000, 11, 1, size=500), ack(6000, 1, 11),
        ]
        stats = station_stats(Trace.from_rows(rows), tiny_roster)
        assert stats.fairness("acked_bytes") == pytest.approx(1.0)

    def test_empty_trace(self, tiny_roster):
        stats = station_stats(Trace.empty(), tiny_roster)
        assert len(stats) == 2
        assert stats.fairness() == 1.0

    def test_simulated_cell_fairness_in_range(self, small_scenario):
        stats = station_stats(small_scenario.trace, small_scenario.roster)
        index = stats.fairness("acked_bytes")
        assert 0.0 < index <= 1.0
