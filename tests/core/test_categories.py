"""Tests for the 16 size-rate categories (paper §6)."""

import numpy as np
import pytest

from repro.core import ALL_CATEGORIES, Category, category_codes, category_mask
from repro.frames import SizeClass, Trace

from ..conftest import ack, data


class TestCategoryNaming:
    def test_paper_names(self):
        assert Category(SizeClass.S, 3).name == "S-11"
        assert Category(SizeClass.XL, 0).name == "XL-1"
        assert Category(SizeClass.M, 2).name == "M-5.5"
        assert Category(SizeClass.L, 1).name == "L-2"

    def test_sixteen_distinct_categories(self):
        assert len(ALL_CATEGORIES) == 16
        assert len({c.name for c in ALL_CATEGORIES}) == 16

    @pytest.mark.parametrize("name", ["S-1", "M-2", "L-5.5", "XL-11"])
    def test_from_name_round_trip(self, name):
        assert Category.from_name(name).name == name

    @pytest.mark.parametrize("bad", ["Q-11", "S-54", "S11", "", "XL-"])
    def test_from_name_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            Category.from_name(bad)

    def test_rate_mbps_property(self):
        assert Category.from_name("S-5.5").rate_mbps == 5.5


class TestMasksAndCodes:
    def test_category_mask_selects_only_matching_data(self):
        rows = [
            data(0, 10, 1, size=200, rate=11.0),    # S-11
            data(1000, 10, 1, size=1400, rate=11.0),  # XL-11
            data(2000, 10, 1, size=200, rate=1.0),  # S-1
            ack(3000, 1, 10),                        # control: never matches
        ]
        trace = Trace.from_rows(rows)
        mask = category_mask(trace, Category.from_name("S-11"))
        assert list(mask) == [True, False, False, False]

    def test_category_codes_cover_0_to_15(self):
        rows = [
            data(i, 10, 1, size=size, rate=rate)
            for i, (size, rate) in enumerate(
                (s, r)
                for r in (1.0, 2.0, 5.5, 11.0)
                for s in (100, 500, 1000, 1400)
            )
        ]
        codes = category_codes(Trace.from_rows(rows))
        assert sorted(codes.tolist()) == list(range(16))

    def test_masks_partition_data_frames(self):
        rows = [data(i * 100, 10, 1, size=100 + i * 97, rate=11.0) for i in range(20)]
        trace = Trace.from_rows(rows)
        total = np.zeros(len(trace), dtype=int)
        for cat in ALL_CATEGORIES:
            total += category_mask(trace, cat).astype(int)
        assert np.all(total == 1)  # each data frame in exactly one category
