"""Tests for per-category transmission counts (paper §6.3, Figs 10-13)."""

import numpy as np
import pytest

from repro.core import (
    Category,
    figure10_categories,
    figure11_categories,
    figure12_categories,
    figure13_categories,
    transmissions_vs_utilization,
)
from repro.frames import SizeClass, Trace

from ..conftest import ack, data


class TestFigureCategorySets:
    def test_fig10_is_small_across_rates(self):
        cats = figure10_categories()
        assert [c.name for c in cats] == ["S-1", "S-2", "S-5.5", "S-11"]

    def test_fig11_is_xl_across_rates(self):
        assert [c.name for c in figure11_categories()] == [
            "XL-1", "XL-2", "XL-5.5", "XL-11",
        ]

    def test_fig12_is_1mbps_across_sizes(self):
        assert [c.name for c in figure12_categories()] == [
            "S-1", "M-1", "L-1", "XL-1",
        ]

    def test_fig13_is_11mbps_across_sizes(self):
        assert [c.name for c in figure13_categories()] == [
            "S-11", "M-11", "L-11", "XL-11",
        ]


class TestCounts:
    def test_retransmissions_counted(self):
        rows = [
            data(0, 10, 1, size=200, rate=11.0, seq=1),
            data(2000, 10, 1, size=200, rate=11.0, seq=1, retry=True),
            ack(3000, 1, 10),
        ]
        counts = transmissions_vs_utilization(
            Trace.from_rows(rows), categories=figure10_categories()
        )
        assert counts["S-11"].value[0] == pytest.approx(2.0)

    def test_control_frames_never_counted(self):
        rows = [ack(0, 1, 10)]
        counts = transmissions_vs_utilization(
            Trace.from_rows(rows), categories=figure10_categories()
        )
        for name in counts.names:
            assert np.all(counts[name].value == 0)

    def test_dominant_at(self):
        rows = (
            [data(i * 1000, 10, 1, size=200, rate=11.0) for i in range(5)]
            + [data(50_000, 10, 1, size=200, rate=1.0)]
        )
        counts = transmissions_vs_utilization(
            Trace.from_rows(rows), categories=figure10_categories()
        )
        util = float(counts["S-11"].utilization[0])
        assert counts.dominant_at(util) == "S-11"

    def test_per_second_averaging(self):
        # 4 S-11 frames in second 0, 2 in second 1, same utilization bin
        # would average; here different bins so both appear raw.
        rows = [data(i * 1000, 10, 1, size=200, rate=11.0) for i in range(4)]
        rows += [
            data(1_000_000 + i * 1000, 10, 1, size=200, rate=11.0) for i in range(2)
        ]
        counts = transmissions_vs_utilization(
            Trace.from_rows(rows), categories=(Category.from_name("S-11"),)
        )
        total = (counts["S-11"].value * counts["S-11"].count).sum()
        assert total == pytest.approx(6.0)
