"""Tests for RTS/CTS analysis (paper §6.1, Fig 7)."""

import numpy as np
import pytest

from repro.core import rts_cts_fairness, rts_cts_vs_utilization
from repro.frames import Trace

from ..conftest import ack, cts, data, rts


class TestFigure7Series:
    def test_counts_per_second(self):
        rows = [
            rts(0, 11, 1), cts(500, 1, 11), data(1000, 11, 1), ack(2500, 1, 11),
            rts(500_000, 11, 1),  # failed handshake: RTS only
        ]
        series = rts_cts_vs_utilization(Trace.from_rows(rows))
        # One second in the trace: 2 RTS, 1 CTS at its utilization bin.
        assert series.rts.value[0] == pytest.approx(2.0)
        assert series.cts.value[0] == pytest.approx(1.0)

    def test_handshake_success_ratio_bounded(self):
        rows = [rts(0, 11, 1), cts(500, 1, 11), rts(600_000, 11, 1)]
        series = rts_cts_vs_utilization(Trace.from_rows(rows))
        ratio = series.handshake_success_ratio()
        assert np.all(ratio <= 1.0)
        assert np.all(ratio >= 0.0)

    def test_no_rtscts_traffic(self):
        trace = Trace.from_rows([data(0, 10, 1), ack(1000, 1, 10)])
        series = rts_cts_vs_utilization(trace)
        assert np.all(series.rts.value == 0)
        assert np.all(series.cts.value == 0)


class TestFairness:
    def test_balanced_shares_give_fairness_one(self, tiny_roster):
        # Stations 10 (plain) and 11 (RTS/CTS) each deliver one frame.
        rows = [
            data(0, 10, 1), ack(1000, 1, 10),
            data(5000, 11, 1), ack(6500, 1, 11),
        ]
        fairness = rts_cts_fairness(Trace.from_rows(rows), tiny_roster)
        assert fairness.rtscts_population == pytest.approx(0.5)
        assert fairness.rtscts_share == pytest.approx(0.5)
        assert fairness.fairness_index == pytest.approx(1.0)

    def test_starved_rtscts_user_detected(self, tiny_roster):
        # Station 11 (RTS/CTS) delivers nothing; station 10 delivers 3.
        rows = []
        t = 0
        for _ in range(3):
            rows.append(data(t, 10, 1)); t += 1500
            rows.append(ack(t, 1, 10)); t += 1500
        rows.append(data(t, 11, 1))  # unacked
        fairness = rts_cts_fairness(Trace.from_rows(rows), tiny_roster)
        assert fairness.rtscts_share == 0.0
        assert fairness.fairness_index == 0.0
        assert fairness.plain_share == pytest.approx(1.0)

    def test_ap_transmissions_excluded(self, tiny_roster):
        # Downlink traffic must not skew the station fairness measure.
        rows = [data(0, 1, 10), ack(1000, 10, 1)]
        fairness = rts_cts_fairness(Trace.from_rows(rows), tiny_roster)
        assert fairness.rtscts_share == 0.0
        assert fairness.plain_share == 0.0

    def test_empty_roster(self):
        from repro.frames import NodeRoster

        fairness = rts_cts_fairness(Trace.empty(), NodeRoster([]))
        assert fairness.rtscts_population == 0.0


class TestAirtimeOverhead:
    def test_handshake_airtime_cost_exceeds_plain(self, tiny_roster):
        """Per delivered frame, an RTS/CTS user pays RTS + CTS + two
        extra SIFS of channel time."""
        rows = [
            # Plain station 10: DATA -> ACK.
            data(0, 10, 1, size=1000, rate=11.0), ack(1500, 1, 10),
            # RTS/CTS station 11: RTS -> CTS -> DATA -> ACK.
            rts(10_000, 11, 1), cts(10_500, 1, 11),
            data(11_000, 11, 1, size=1000, rate=11.0), ack(12_500, 1, 11),
        ]
        fairness = rts_cts_fairness(Trace.from_rows(rows), tiny_roster)
        assert fairness.airtime_overhead_ratio > 1.0
        # The exact gap is RTS + (SIFS + CTS): 352 + 314 us.
        gap = (
            fairness.rtscts_airtime_per_delivery_us
            - fairness.plain_airtime_per_delivery_us
        )
        assert gap == pytest.approx(352 + 10 + 304)

    def test_overhead_nan_without_deliveries(self, tiny_roster):
        fairness = rts_cts_fairness(Trace.empty(), tiny_roster)
        import numpy as np
        assert np.isnan(fairness.airtime_overhead_ratio)
