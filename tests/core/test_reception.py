"""Tests for first-attempt reception analysis (paper §6.4, Fig 14)."""

import numpy as np
import pytest

from repro.core import first_attempt_ack_vs_utilization
from repro.frames import Trace

from ..conftest import ack, data


class TestFirstAttemptAcks:
    def test_first_attempt_acked_counted(self):
        rows = [data(0, 10, 1, rate=11.0), ack(1000, 1, 10)]
        series = first_attempt_ack_vs_utilization(Trace.from_rows(rows))
        assert series[11.0].value.sum() == pytest.approx(1.0)
        assert series[1.0].value.sum() == 0.0

    def test_retry_acked_not_counted(self):
        """Only frames acked at their *first* attempt qualify."""
        rows = [
            data(0, 10, 1, rate=11.0, seq=7),
            data(3000, 10, 1, rate=11.0, seq=7, retry=True),
            ack(4500, 1, 10),
        ]
        series = first_attempt_ack_vs_utilization(Trace.from_rows(rows))
        assert series[11.0].value.sum() == 0.0

    def test_unacked_first_attempt_not_counted(self):
        rows = [data(0, 10, 1, rate=11.0)]
        series = first_attempt_ack_vs_utilization(Trace.from_rows(rows))
        assert series[11.0].value.sum() == 0.0

    def test_split_by_rate(self):
        rows = [
            data(0, 10, 1, rate=1.0), ack(13000, 1, 10),
            data(50_000, 10, 1, rate=11.0), ack(52_000, 1, 10),
            data(90_000, 10, 1, rate=11.0), ack(92_000, 1, 10),
        ]
        series = first_attempt_ack_vs_utilization(Trace.from_rows(rows))
        assert series[1.0].value.sum() == pytest.approx(1.0)
        assert series[11.0].value.sum() == pytest.approx(2.0)
        assert series.rates == (1.0, 2.0, 5.5, 11.0)

    def test_consistency_on_simulated_trace(self, small_scenario):
        """First-attempt acks never exceed transmissions at any rate."""
        from repro.core import transmissions_vs_utilization, ALL_CATEGORIES

        trace = small_scenario.trace
        reception = first_attempt_ack_vs_utilization(trace)
        counts = transmissions_vs_utilization(trace)
        for rate, label in ((1.0, "1"), (11.0, "11")):
            acked_total = (
                reception[rate].value * reception[rate].count
            ).sum()
            tx_total = sum(
                (counts[f"{cls}-{label}"].value * counts[f"{cls}-{label}"].count).sum()
                for cls in ("S", "M", "L", "XL")
            )
            assert acked_total <= tx_total + 1e-9
