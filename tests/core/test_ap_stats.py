"""Tests for per-AP activity and dataset summaries (paper §4.3)."""

import pytest

from repro.core import ap_frame_ranking, dataset_summary, user_association_series
from repro.frames import NodeInfo, NodeRoster, Trace

from ..conftest import ack, beacon, data


@pytest.fixture
def two_ap_roster():
    return NodeRoster(
        [
            NodeInfo(node_id=1, is_ap=True),
            NodeInfo(node_id=2, is_ap=True),
            NodeInfo(node_id=10, is_ap=False),
            NodeInfo(node_id=11, is_ap=False),
        ]
    )


class TestApRanking:
    def test_ranking_descending(self, two_ap_roster):
        rows = [
            data(0, 10, 1), ack(1000, 1, 10),
            data(5000, 11, 1), ack(6000, 1, 11),
            data(9000, 10, 2),
        ]
        activity = ap_frame_ranking(Trace.from_rows(rows), two_ap_roster)
        assert list(activity.table.column("ap")) == [1, 2]
        assert list(activity.table.column("frames")) == [4, 1]
        assert list(activity.table.column("rank")) == [1, 2]

    def test_top_fraction(self, two_ap_roster):
        rows = [data(i * 1000, 10, 1) for i in range(9)] + [data(99_000, 10, 2)]
        activity = ap_frame_ranking(Trace.from_rows(rows), two_ap_roster)
        assert activity.top_fraction(1) == pytest.approx(0.9)
        assert activity.top_fraction(2) == pytest.approx(1.0)

    def test_empty_trace(self, two_ap_roster):
        activity = ap_frame_ranking(Trace.empty(), two_ap_roster)
        assert activity.total_frames == 0
        assert activity.top_fraction(15) == 0.0


class TestUserSeries:
    def test_distinct_stations_per_interval(self, two_ap_roster):
        rows = [
            data(0, 10, 1),
            data(1000, 10, 1),           # same station, same interval
            data(2000, 11, 2),
            data(31_000_000, 11, 1),     # second interval: one station
        ]
        series = user_association_series(Trace.from_rows(rows), two_ap_roster)
        assert list(series.column("users")) == [2, 1]

    def test_ap_to_ap_frames_ignored(self, two_ap_roster):
        rows = [data(0, 1, 2)]
        series = user_association_series(Trace.from_rows(rows), two_ap_roster)
        assert list(series.column("users")) == [0]

    def test_empty(self, two_ap_roster):
        series = user_association_series(Trace.empty(), two_ap_roster)
        assert len(series) == 0


class TestDatasetSummary:
    def test_frame_mix(self, exchange_trace):
        summary = dataset_summary(exchange_trace, "unit")
        assert summary.n_frames == 7
        assert summary.n_data == 2
        assert summary.n_ack == 2
        assert summary.n_rts == 1
        assert summary.n_cts == 1
        assert summary.n_beacon == 1
        assert summary.channels == (1,)

    def test_as_row_keys(self, exchange_trace):
        row = dataset_summary(exchange_trace, "unit").as_row()
        assert row["dataset"] == "unit"
        assert row["frames"] == 7

    def test_empty(self):
        summary = dataset_summary(Trace.empty(), "empty")
        assert summary.n_frames == 0
        assert summary.duration_s == 0.0
        assert summary.channels == ()
