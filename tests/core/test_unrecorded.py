"""Tests for atomicity-based unrecorded-frame estimation (paper §4.4)."""

import pytest

from repro.core import estimate_unrecorded, unrecorded_by_ap
from repro.frames import Trace

from ..conftest import ack, beacon, cts, data, rts


class TestDataAckRule:
    def test_lone_ack_implies_missing_data(self):
        trace = Trace.from_rows([beacon(0, 1), ack(1000, 1, 10)])
        est = estimate_unrecorded(trace)
        assert est.missing_data == 1
        assert list(est.missing_data_src) == [10]  # ACK dst = data sender
        assert list(est.missing_data_dst) == [1]

    def test_matched_pair_not_missing(self):
        trace = Trace.from_rows([data(0, 10, 1), ack(1000, 1, 10)])
        assert estimate_unrecorded(trace).missing_data == 0

    def test_opening_ack_counts(self):
        trace = Trace.from_rows([ack(0, 1, 10), data(5000, 10, 1)])
        assert estimate_unrecorded(trace).missing_data == 1

    def test_mismatched_addresses_count_as_missing(self):
        # DATA from 99 followed by ACK for 10: 10's DATA was missed.
        trace = Trace.from_rows([data(0, 99, 1), ack(1000, 1, 10)])
        assert estimate_unrecorded(trace).missing_data == 1


class TestRtsCtsRule:
    def test_lone_cts_implies_missing_rts(self):
        trace = Trace.from_rows([beacon(0, 1), cts(1000, 1, 11)])
        assert estimate_unrecorded(trace).missing_rts == 1

    def test_matched_handshake_not_missing(self):
        trace = Trace.from_rows([rts(0, 11, 1), cts(500, 1, 11)])
        est = estimate_unrecorded(trace)
        assert est.missing_rts == 0

    def test_opening_cts_counts(self):
        trace = Trace.from_rows([cts(0, 1, 11), beacon(1000, 1)])
        assert estimate_unrecorded(trace).missing_rts == 1


class TestRtsCtsDataRule:
    def test_rts_then_data_implies_missing_cts(self):
        """RTS followed directly by its DATA: the CTS must have existed."""
        trace = Trace.from_rows(
            [rts(0, 11, 1), data(1000, 11, 1, size=1400)]
        )
        assert estimate_unrecorded(trace).missing_cts == 1

    def test_complete_handshake_no_missing_cts(self):
        trace = Trace.from_rows(
            [rts(0, 11, 1), cts(500, 1, 11), data(1000, 11, 1), ack(2500, 1, 11)]
        )
        est = estimate_unrecorded(trace)
        assert est.missing_cts == 0
        assert est.missing_rts == 0
        assert est.missing_data == 0

    def test_unrelated_data_after_rts_not_counted(self):
        trace = Trace.from_rows([rts(0, 11, 1), data(1000, 10, 1)])
        assert estimate_unrecorded(trace).missing_cts == 0


class TestEquation1:
    def test_unrecorded_percent(self):
        # 3 captured frames, 1 inferred missing -> 1/4 = 25 %.
        trace = Trace.from_rows(
            [beacon(0, 1), ack(1000, 1, 10), data(5000, 10, 1)]
        )
        est = estimate_unrecorded(trace)
        assert est.captured_frames == 3
        assert est.total_missing == 1
        assert est.unrecorded_percent == pytest.approx(25.0)

    def test_empty_trace(self):
        est = estimate_unrecorded(Trace.empty())
        assert est.unrecorded_percent == 0.0


class TestPerApAttribution:
    def test_fig4c_table(self, tiny_roster):
        rows = [
            data(0, 10, 1), ack(1000, 1, 10),      # complete, AP 1
            beacon(2000, 1),
            ack(3000, 1, 11),                       # missing DATA 11 -> 1
        ]
        table = unrecorded_by_ap(Trace.from_rows(rows), tiny_roster)
        assert table.column("ap")[0] == 1
        assert table.column("captured")[0] == 4  # data+ack+beacon+ack
        assert table.column("missing")[0] == 1
        assert table.column("unrecorded_percent")[0] == pytest.approx(100 / 5)

    def test_top_n_cutoff(self, tiny_roster):
        trace = Trace.from_rows([data(0, 10, 1), ack(1000, 1, 10)])
        table = unrecorded_by_ap(trace, tiny_roster, top_n=0)
        assert len(table) == 0

    def test_no_aps(self):
        from repro.frames import NodeRoster

        trace = Trace.from_rows([data(0, 10, 1)])
        table = unrecorded_by_ap(trace, NodeRoster([]))
        assert len(table) == 0
