"""Tests for congestion classification (paper §5.3)."""

import numpy as np
import pytest

from repro.core import (
    PAPER_THRESHOLDS,
    CongestionClassifier,
    CongestionLevel,
    CongestionThresholds,
    frame_cbt_us,
)
from repro.frames import FrameType, Trace

from ..conftest import data


class TestThresholds:
    def test_paper_values(self):
        assert PAPER_THRESHOLDS.low == 30.0
        assert PAPER_THRESHOLDS.high == 84.0

    @pytest.mark.parametrize(
        "util,expected",
        [
            (0.0, CongestionLevel.UNCONGESTED),
            (29.9, CongestionLevel.UNCONGESTED),
            (30.0, CongestionLevel.MODERATE),
            (84.0, CongestionLevel.MODERATE),
            (84.1, CongestionLevel.HIGH),
            (150.0, CongestionLevel.HIGH),
        ],
    )
    def test_boundaries(self, util, expected):
        assert PAPER_THRESHOLDS.classify(util) == expected

    def test_array_matches_scalar(self):
        percent = np.array([0.0, 15.0, 30.0, 55.0, 84.0, 84.5, 99.0])
        codes = PAPER_THRESHOLDS.classify_array(percent)
        assert [CongestionLevel(int(c)) for c in codes] == [
            PAPER_THRESHOLDS.classify(float(p)) for p in percent
        ]

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            CongestionThresholds(low=50.0, high=40.0)
        with pytest.raises(ValueError):
            CongestionThresholds(low=-1.0, high=84.0)

    def test_level_labels(self):
        assert CongestionLevel.HIGH.label == "highly congested"
        assert CongestionLevel.UNCONGESTED.label == "uncongested"


def _trace_with_knee():
    """Seconds whose throughput rises with load then collapses.

    Low-utilization seconds carry 11 Mbps frames (high tput); the
    busiest seconds carry 1 Mbps frames (channel full, few bits) —
    a miniature of the paper's Figure 6 mechanism.
    """
    rows = []
    second = 0
    cbt_fast = frame_cbt_us(FrameType.DATA, 1400, 11.0)
    cbt_slow = frame_cbt_us(FrameType.DATA, 1400, 1.0)
    # Rising leg: increasing numbers of fast frames (util ~8% -> ~75%).
    for load in range(1, 10):
        for rep in range(3):
            n = int(load * 0.083 * 1e6 / cbt_fast)
            t0 = second * 1_000_000
            rows.extend(
                data(t0 + int(i * cbt_fast), 10, 1, 1400, 11.0) for i in range(n)
            )
            second += 1
    # Collapsed leg: seconds stuffed with slow frames (util ~95%).
    for rep in range(6):
        n = int(0.95 * 1e6 / cbt_slow)
        t0 = second * 1_000_000
        rows.extend(
            data(t0 + int(i * cbt_slow), 10, 1, 1400, 1.0) for i in range(n)
        )
        second += 1
    return Trace.from_rows(rows)


class TestClassifierFit:
    def test_detects_knee_on_synthetic_collapse(self):
        clf = CongestionClassifier(smooth_window=3).fit(_trace_with_knee())
        assert clf.thresholds is not None
        # Peak throughput occurs on the rising leg, around 70-80 %.
        assert 55.0 <= clf.thresholds.high <= 90.0
        assert clf.thresholds.low == 30.0

    def test_fallback_on_monotone_curve(self):
        """A purely rising curve has no knee: fall back to the paper's 84."""
        rows = []
        cbt = frame_cbt_us(FrameType.DATA, 1400, 11.0)
        second = 0
        for load in range(1, 8):
            n = int(load * 0.1 * 1e6 / cbt)
            t0 = second * 1_000_000
            rows.extend(data(t0 + int(i * cbt), 10, 1, 1400, 11.0) for i in range(n))
            second += 1
        clf = CongestionClassifier().fit(Trace.from_rows(rows))
        assert clf.thresholds.high == 84.0

    def test_unfitted_classifier_raises(self):
        with pytest.raises(RuntimeError):
            CongestionClassifier().classify_percent(np.array([50.0]))

    def test_occupancy_sums_to_one(self):
        trace = _trace_with_knee()
        clf = CongestionClassifier(smooth_window=3).fit(trace)
        occupancy = clf.occupancy(trace)
        assert sum(occupancy.values()) == pytest.approx(1.0)
        assert occupancy[CongestionLevel.HIGH] > 0

    def test_classify_seconds_length(self):
        trace = _trace_with_knee()
        clf = CongestionClassifier(smooth_window=3).fit(trace)
        from repro.core import utilization_series

        assert len(clf.classify_seconds(trace)) == len(utilization_series(trace))
