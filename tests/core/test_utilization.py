"""Tests for per-second channel utilization (paper Eq 8, Fig 5)."""

import numpy as np
import pytest

from repro.core import frame_cbt_us, utilization_histogram, utilization_series
from repro.frames import FrameType, Trace

from ..conftest import data


class TestUtilizationSeries:
    def test_eq8_percentage(self):
        """A second holding exactly one known frame: U = CBT / 1e6 * 100."""
        trace = Trace.from_rows([data(0, 10, 1, size=1000, rate=1.0)])
        series = utilization_series(trace)
        expected = frame_cbt_us(FrameType.DATA, 1000, 1.0) / 1e6 * 100
        assert series.percent[0] == pytest.approx(expected)

    def test_busy_second_approaches_100(self):
        """~116 back-to-back XL-1 frames fill a second almost completely."""
        cbt = frame_cbt_us(FrameType.DATA, 1060, 1.0)  # ~8994 us
        n = int(1_000_000 // cbt)
        rows = [data(int(i * cbt), 10, 1, size=1060, rate=1.0) for i in range(n)]
        series = utilization_series(Trace.from_rows(rows))
        assert 95.0 <= series.percent[0] <= 101.0

    def test_clipped(self):
        trace = Trace.from_rows(
            [data(i * 1000, 10, 1, size=1400, rate=1.0) for i in range(200)]
        )
        series = utilization_series(trace)
        assert series.percent[0] > 100.0  # raw metric exceeds 100 when oversubscribed
        assert series.clipped()[0] == 100.0

    def test_alignment_n_seconds(self):
        trace = Trace.from_rows([data(0, 10, 1)])
        series = utilization_series(trace, n_seconds=4)
        assert len(series) == 4
        assert np.all(series.percent[1:] == 0)

    def test_seconds_axis(self):
        trace = Trace.from_rows([data(0, 10, 1), data(2_100_000, 10, 1)])
        series = utilization_series(trace)
        assert list(series.seconds) == [0, 1, 2]

    def test_empty_trace(self):
        series = utilization_series(Trace.empty())
        assert len(series) == 0


class TestHistogram:
    def test_counts_sum_to_seconds(self):
        rows = [data(i * 300_000, 10, 1, size=800, rate=5.5) for i in range(40)]
        trace = Trace.from_rows(rows)
        lefts, counts = utilization_histogram(trace)
        series = utilization_series(trace)
        assert counts.sum() == len(series)
        assert len(lefts) == len(counts) == 100

    def test_mode_percent(self):
        # Nine identical seconds -> the mode is that utilization level.
        cbt = frame_cbt_us(FrameType.DATA, 1000, 11.0)
        rows = []
        for s in range(9):
            for i in range(300):  # ~30% utilization
                rows.append(data(s * 1_000_000 + int(i * cbt), 10, 1, 1000, 11.0))
        series = utilization_series(Trace.from_rows(rows))
        assert series.mode_percent() == pytest.approx(
            np.round(series.percent[0]) + 0.5, abs=1.0
        )

    def test_mode_of_empty_is_zero(self):
        from repro.core import UtilizationSeries

        empty = UtilizationSeries(start_us=0, percent=np.empty(0))
        assert empty.mode_percent() == 0.0
