"""Tests for the one-call analysis report."""

import numpy as np
import pytest

from repro.core import CongestionLevel, analyze_trace


class TestAnalyzeTrace:
    def test_full_report_on_simulated_trace(self, small_scenario):
        report = analyze_trace(
            small_scenario.trace, small_scenario.roster, name="unit"
        )
        assert report.name == "unit"
        assert report.summary.n_frames == len(small_scenario.trace)
        assert len(report.utilization) > 0
        assert sum(report.level_occupancy.values()) == pytest.approx(1.0)
        # Roster-dependent sections present.
        assert report.ap_activity is not None
        assert report.unrecorded_per_ap is not None
        assert report.user_series is not None

    def test_report_without_roster(self, small_scenario):
        report = analyze_trace(small_scenario.trace)
        assert report.ap_activity is None
        assert report.unrecorded_per_ap is None
        assert report.user_series is None

    def test_headline_keys(self, small_scenario):
        report = analyze_trace(small_scenario.trace, small_scenario.roster)
        headline = report.headline()
        for key in (
            "throughput_peak_mbps",
            "throughput_peak_utilization",
            "high_congestion_threshold",
            "mode_utilization",
            "unrecorded_percent",
            "high_congestion_fraction",
        ):
            assert key in headline
        assert headline["throughput_peak_mbps"] > 0
        assert 0 <= headline["high_congestion_fraction"] <= 1

    def test_figures_internally_consistent(self, small_scenario):
        report = analyze_trace(small_scenario.trace, small_scenario.roster)
        # Fig 6: goodput <= throughput everywhere.
        assert np.all(
            report.throughput.goodput_mbps.value
            <= report.throughput.throughput_mbps.value + 1e-9
        )
        # Fig 8 shares are fractions of a second.
        for rate in (1.0, 2.0, 5.5, 11.0):
            assert np.all(report.busytime_share[rate].value >= 0)
            assert np.all(report.busytime_share[rate].value <= 1.2)
        # Occupancy levels are the three paper classes.
        assert set(report.level_occupancy) == set(CongestionLevel)
