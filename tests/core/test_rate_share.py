"""Tests for per-rate busy-time share and bytes (paper §6.2, Figs 8-9)."""

import numpy as np
import pytest

from repro.core import (
    busytime_share_vs_utilization,
    bytes_per_rate_vs_utilization,
    frame_cbt_us,
)
from repro.frames import FrameType, Trace

from ..conftest import ack, data


def _mixed_rate_trace():
    """One second with equal byte volumes at 1 and 11 Mbps."""
    rows = []
    t = 0
    for _ in range(4):
        rows.append(data(t, 10, 1, size=1000, rate=1.0))
        t += 12_000
    for _ in range(4):
        rows.append(data(t, 10, 1, size=1000, rate=11.0))
        t += 2_000
    return Trace.from_rows(rows)


class TestFigure8:
    def test_slow_rate_dominates_busytime_at_equal_bytes(self):
        shares = busytime_share_vs_utilization(_mixed_rate_trace())
        busy_1 = shares[1.0].value.sum()
        busy_11 = shares[11.0].value.sum()
        assert busy_1 > 5 * busy_11

    def test_share_values_are_seconds_fractions(self):
        shares = busytime_share_vs_utilization(_mixed_rate_trace())
        expected_1 = 4 * frame_cbt_us(FrameType.DATA, 1000, 1.0) / 1e6
        assert shares[1.0].value.sum() == pytest.approx(expected_1)

    def test_all_four_rates_reported(self):
        shares = busytime_share_vs_utilization(_mixed_rate_trace())
        assert shares.rates == (1.0, 2.0, 5.5, 11.0)
        assert np.all(shares[2.0].value == 0)

    def test_control_frames_excluded(self):
        rows = [data(0, 10, 1, size=1000, rate=11.0), ack(1500, 1, 10)]
        shares = busytime_share_vs_utilization(Trace.from_rows(rows))
        # The 1 Mbps share must not include the ACK (control, not data).
        assert shares[1.0].value.sum() == 0.0


class TestFigure9:
    def test_equal_byte_volumes_reported_equal(self):
        volumes = bytes_per_rate_vs_utilization(_mixed_rate_trace())
        assert volumes[1.0].value.sum() == pytest.approx(
            volumes[11.0].value.sum()
        )
        assert volumes[1.0].value.sum() == pytest.approx(4000.0)

    def test_ratio_helper(self):
        volumes = bytes_per_rate_vs_utilization(_mixed_rate_trace())
        util = volumes[1.0].utilization[0]
        assert volumes.ratio_at(11.0, 1.0, float(util)) == pytest.approx(1.0)

    def test_ratio_nan_when_denominator_empty(self):
        rows = [data(0, 10, 1, size=100, rate=11.0)]
        volumes = bytes_per_rate_vs_utilization(Trace.from_rows(rows))
        util = volumes[11.0].utilization[0]
        assert np.isnan(volumes.ratio_at(11.0, 1.0, float(util)))
