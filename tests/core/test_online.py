"""Tests for the streaming congestion monitor."""

import numpy as np
import pytest

from repro.core import CongestionLevel, utilization_series
from repro.core.online import OnlineCongestionMonitor
from repro.frames import FrameType, Trace

from ..conftest import ack, data


class TestIngestion:
    def test_matches_offline_pipeline_exactly(self, small_scenario):
        """Streaming the trace reproduces utilization_series bit-for-bit
        on every *closed* second."""
        trace = small_scenario.trace
        monitor = OnlineCongestionMonitor()
        monitor.ingest_trace(trace)
        monitor.flush()
        offline = utilization_series(trace)
        online = monitor.utilization_array()
        n = len(online)
        assert n >= len(offline) - 1  # offline may or may not pad the tail
        assert np.allclose(online[: len(offline)], offline.percent[:n])

    def test_closes_seconds_as_time_advances(self):
        monitor = OnlineCongestionMonitor()
        assert monitor.ingest(0, FrameType.DATA, 1000, 11.0) == []
        closed = monitor.ingest(2_500_000, FrameType.DATA, 1000, 11.0)
        assert [o.second_index for o in closed] == [0, 1]
        assert closed[0].frames == 1
        assert closed[1].frames == 0  # the silent middle second

    def test_flush_closes_tail(self):
        monitor = OnlineCongestionMonitor()
        monitor.ingest(0, FrameType.ACK)
        obs = monitor.flush()
        assert obs is not None and obs.second_index == 0
        assert obs.frames == 1

    def test_flush_empty_monitor(self):
        assert OnlineCongestionMonitor().flush() is None

    def test_out_of_order_frame_rejected(self):
        monitor = OnlineCongestionMonitor()
        monitor.ingest(5_000_000, FrameType.DATA, 100, 11.0)
        with pytest.raises(ValueError, match="out of order"):
            monitor.ingest(1_000_000, FrameType.DATA, 100, 11.0)

    def test_explicit_start_anchor(self):
        monitor = OnlineCongestionMonitor(start_us=10_000_000)
        with pytest.raises(ValueError):
            monitor.ingest(5_000_000, FrameType.ACK)  # before the anchor


class TestClassification:
    def test_levels_assigned_per_second(self):
        monitor = OnlineCongestionMonitor()
        # Second 0: one small frame -> uncongested.
        monitor.ingest(0, FrameType.DATA, 100, 11.0)
        # Second 1: stuffed with slow frames -> highly congested.
        for i in range(80):
            monitor.ingest(1_000_000 + i * 12_000, FrameType.DATA, 1400, 1.0)
        monitor.ingest(2_000_001, FrameType.ACK)  # closes second 1
        levels = [o.level for o in monitor.history]
        assert levels[0] == CongestionLevel.UNCONGESTED
        assert levels[1] == CongestionLevel.HIGH

    def test_current_level_tracks_latest(self):
        monitor = OnlineCongestionMonitor()
        assert monitor.current_level is None
        monitor.ingest(0, FrameType.ACK)
        monitor.ingest(1_000_001, FrameType.ACK)
        assert monitor.current_level == CongestionLevel.UNCONGESTED

    def test_level_occupancy_sums_to_one(self, small_scenario):
        monitor = OnlineCongestionMonitor()
        monitor.ingest_trace(small_scenario.trace)
        monitor.flush()
        occupancy = monitor.level_occupancy()
        assert sum(occupancy.values()) == pytest.approx(1.0)
