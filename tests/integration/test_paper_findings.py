"""Shape tests for the paper's headline findings on a scaled load ramp.

These are the scientific acceptance tests: each asserts the *direction*
of one of the paper's findings (F1-F5 in DESIGN.md) on a small ramp run.
Magnitudes differ from the paper (our substrate is a scaled simulator);
directions must not.
"""

import numpy as np
import pytest

from repro.core import analyze_trace
from repro.sim import load_ramp_config, run_scenario


@pytest.fixture(scope="module")
def ramp_report():
    # Shorter run than the benchmark default, so the peak load is raised
    # to guarantee the ramp drives the channel past saturation.
    config = load_ramp_config(
        duration_s=100.0, peak_downlink_pps=45.0, peak_uplink_pps=14.0, seed=17
    )
    result = run_scenario(config)
    return analyze_trace(result.trace, result.roster, name="ramp"), result


class TestF1ThroughputCollapse:
    def test_peak_is_inside_the_band_not_at_the_edges(self, ramp_report):
        report, _ = ramp_report
        peak_util, _ = report.throughput.peak()
        assert 40.0 <= peak_util <= 95.0

    def test_throughput_rises_through_moderate_band(self, ramp_report):
        """Count-weighted band means: the upper moderate band out-delivers
        the lower one (single bins are too noisy at this scale)."""
        report, _ = ramp_report
        tput = report.throughput.throughput_mbps

        def band_mean(lo, hi):
            band = tput.restricted(lo, hi)
            if band.count.sum() == 0:
                return float("nan")
            return float(np.average(band.value, weights=band.count))

        low = band_mean(20, 45)
        mid = band_mean(50, report.thresholds.high)
        if not (np.isnan(low) or np.isnan(mid)):
            assert mid > low


class TestF2RateUsage:
    def test_1_and_11_mbps_dominate(self, ramp_report):
        """'Scarce use of the 2 Mbps and 5.5 Mbps data rates.'"""
        _, result = ramp_report
        from repro.frames import FrameType

        data = result.trace.only_type(FrameType.DATA)
        counts = np.bincount(data.rate_code, minlength=4).astype(float)
        extremes = counts[0] + counts[3]
        middles = counts[1] + counts[2]
        assert extremes > middles


class TestF4SlowFramesEatAirtime:
    def test_1mbps_airtime_grows_past_knee(self, ramp_report):
        report, _ = ramp_report
        share = report.busytime_share[1.0]
        moderate = share.value_at(55)
        high = share.value_at(95)
        if not (np.isnan(moderate) or np.isnan(high)):
            assert high > moderate

    def test_11mbps_moves_more_bytes_per_airtime(self, ramp_report):
        """11 Mbps delivers more bytes despite less or similar airtime."""
        report, _ = ramp_report
        total_bytes_11 = np.nansum(
            report.bytes_per_rate[11.0].value * report.bytes_per_rate[11.0].count
        )
        total_bytes_1 = np.nansum(
            report.bytes_per_rate[1.0].value * report.bytes_per_rate[1.0].count
        )
        total_busy_11 = np.nansum(
            report.busytime_share[11.0].value * report.busytime_share[11.0].count
        )
        total_busy_1 = np.nansum(
            report.busytime_share[1.0].value * report.busytime_share[1.0].count
        )
        if min(total_bytes_1, total_busy_1, total_busy_11) > 0:
            per_airtime_11 = total_bytes_11 / total_busy_11
            per_airtime_1 = total_bytes_1 / total_busy_1
            assert per_airtime_11 > 3 * per_airtime_1


class TestF5AcceptanceDelay:
    def test_1mbps_delays_exceed_11mbps_delays(self, ramp_report):
        """Pooled over all deliveries: the 1 Mbps median acceptance
        delay sits far above the 11 Mbps median (paper Fig 15)."""
        from repro.core import acceptance_delays

        _, result = ramp_report
        delays = acceptance_delays(result.trace)
        slow = delays.delay_us[delays.rate_code == 0]
        fast = delays.delay_us[delays.rate_code == 3]
        assert len(slow) >= 10 and len(fast) >= 10
        assert np.median(slow) > 2 * np.median(fast)


class TestCongestionClassification:
    def test_all_three_states_observed_on_a_full_ramp(self, ramp_report):
        report, _ = ramp_report
        occupancy = report.level_occupancy
        assert all(f >= 0 for f in occupancy.values())
        # The ramp starts idle and ends saturated: at least uncongested
        # and highly congested seconds must both exist.
        from repro.core import CongestionLevel

        assert occupancy[CongestionLevel.UNCONGESTED] > 0
        assert occupancy[CongestionLevel.HIGH] > 0
