"""Integration tests: simulate -> capture -> analyze -> (pcap) -> analyze."""

import numpy as np
import pytest

from repro.core import (
    analyze_trace,
    estimate_unrecorded,
    utilization_series,
)
from repro.pcap import read_trace, write_trace
from repro.sim import ground_truth_trace


class TestSimulateAnalyze:
    def test_report_invariants(self, small_scenario):
        report = analyze_trace(
            small_scenario.trace, small_scenario.roster, name="e2e"
        )
        # Utilization is physical: non-negative, bounded by oversubscribed 120 %.
        assert np.all(report.utilization.percent >= 0)
        assert report.utilization.percent.max() < 130
        # Goodput <= throughput bin-wise (Fig 6 sanity).
        assert np.all(
            report.throughput.goodput_mbps.value
            <= report.throughput.throughput_mbps.value + 1e-9
        )
        # Per-rate busy-time in any second cannot exceed the second.
        for rate in (1.0, 2.0, 5.5, 11.0):
            assert np.all(report.busytime_share[rate].value <= 1.2)
        # Acceptance delays are positive and below the retry-limit bound.
        delays = report.delays
        for name in delays.names:
            assert np.all(delays[name].value >= 0)
            assert np.all(delays[name].value < 5.0)

    def test_capture_is_subset_of_ground_truth(self, small_scenario):
        assert len(small_scenario.trace) <= len(small_scenario.ground_truth)
        assert small_scenario.capture_ratio > 0.5  # central sniffer hears most

    def test_unrecorded_estimator_detects_losses(self, small_scenario):
        """The §4.4 estimator must report a loss rate in the same decade
        as the true sniffer loss rate."""
        estimate = estimate_unrecorded(small_scenario.trace)
        true_missing = len(small_scenario.ground_truth) - len(small_scenario.trace)
        true_percent = 100.0 * true_missing / len(small_scenario.ground_truth)
        # The estimator only sees DATA/RTS/CTS gaps, so it underestimates,
        # but it must be positive when losses exist and not wildly over.
        if true_percent > 1.0:
            assert estimate.unrecorded_percent > 0
        assert estimate.unrecorded_percent <= max(4 * true_percent, 5.0)

    def test_utilization_of_capture_tracks_ground_truth(self, small_scenario):
        cap = utilization_series(small_scenario.trace)
        truth = utilization_series(
            ground_truth_trace(small_scenario.medium),
            start_us=cap.start_us,
            n_seconds=len(cap),
        )
        # Captured utilization is within sniffer losses of the truth.
        # The miss is biased toward *long* low-SNR frames (obstructed
        # stations are as hard to hear at the sniffer as at the AP), so
        # the CBT ratio runs below the frame-count capture ratio.
        mask = truth.percent > 5.0
        if mask.any():
            ratio = cap.percent[mask] / truth.percent[mask]
            assert np.median(ratio) > 0.45
            assert np.median(ratio) < 1.1


class TestPcapPipeline:
    def test_pcap_round_trip_preserves_report(self, small_scenario, tmp_path):
        """Figure data computed from a pcap file matches the live trace.

        (ACK/CTS transmitter addresses are lost on the air, which the
        §6.4 ACK matcher works around via address *destination* checks,
        so the throughput/utilization/goodput results must be identical.)
        """
        path = tmp_path / "session.pcap"
        write_trace(small_scenario.trace, path)
        loaded = read_trace(path)

        live = analyze_trace(small_scenario.trace, name="live")
        from_file = analyze_trace(loaded, name="pcap")

        assert np.allclose(
            live.utilization.percent, from_file.utilization.percent
        )
        assert np.allclose(
            live.throughput.throughput_mbps.value,
            from_file.throughput.throughput_mbps.value,
        )
        assert np.allclose(
            live.throughput.goodput_mbps.value,
            from_file.throughput.goodput_mbps.value,
        )
        assert live.summary.n_data == from_file.summary.n_data
        assert live.summary.n_ack == from_file.summary.n_ack
