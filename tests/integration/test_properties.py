"""Cross-module property-based tests (hypothesis).

These exercise invariants that must hold for *any* trace, not just the
fixtures: busy-time additivity, goodput/throughput ordering, pcap
round-trip identity for analysis-relevant fields, and classifier
totality.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PAPER_THRESHOLDS,
    CongestionLevel,
    goodput_per_second,
    throughput_per_second,
    trace_cbt_us,
    utilization_series,
)
from repro.frames import BROADCAST, FrameRow, FrameType, Trace


@st.composite
def frame_rows(draw, max_time_us=5_000_000):
    """A random but physically plausible captured frame."""
    ftype = draw(st.sampled_from(list(FrameType)))
    time_us = draw(st.integers(min_value=0, max_value=max_time_us))
    rate = draw(st.sampled_from([1.0, 2.0, 5.5, 11.0]))
    if ftype in (FrameType.ACK, FrameType.CTS):
        size = 14
    elif ftype == FrameType.RTS:
        size = 20
    else:
        size = draw(st.integers(min_value=28, max_value=2000))
    return FrameRow(
        time_us=time_us,
        ftype=ftype,
        rate_mbps=rate,
        size=size,
        src=draw(st.integers(min_value=0, max_value=200)),
        dst=draw(
            st.one_of(
                st.integers(min_value=0, max_value=200),
                st.just(BROADCAST),
            )
        ),
        retry=draw(st.booleans()),
        channel=draw(st.sampled_from([1, 6, 11])),
        seq=draw(st.integers(min_value=0, max_value=4095)),
        snr_db=draw(st.floats(min_value=-5.0, max_value=40.0)),
    )


traces = st.lists(frame_rows(), min_size=0, max_size=60).map(
    lambda rows: Trace.from_rows(rows).sorted_by_time()
)


@given(traces)
@settings(max_examples=60, deadline=None)
def test_cbt_is_positive_and_additive(trace):
    cbt = trace_cbt_us(trace)
    assert np.all(cbt > 0) if len(trace) else True
    # Splitting the trace anywhere conserves total busy time.
    if len(trace) >= 2:
        k = len(trace) // 2
        head = trace.take(np.arange(k))
        tail = trace.take(np.arange(k, len(trace)))
        assert trace_cbt_us(head).sum() + trace_cbt_us(tail).sum() == pytest.approx(
            cbt.sum()
        )


@given(traces)
@settings(max_examples=60, deadline=None)
def test_goodput_never_exceeds_throughput(trace):
    if len(trace) == 0:
        return
    tput = throughput_per_second(trace)
    gput = goodput_per_second(trace, n_seconds=len(tput))
    assert np.all(gput <= tput + 1e-12)


@given(traces)
@settings(max_examples=60, deadline=None)
def test_utilization_nonnegative_and_classifiable(trace):
    series = utilization_series(trace)
    assert np.all(series.percent >= 0)
    levels = PAPER_THRESHOLDS.classify_array(series.percent)
    assert set(np.unique(levels)).issubset({int(l) for l in CongestionLevel})


@given(traces)
@settings(max_examples=30, deadline=None)
def test_pcap_round_trip_preserves_analysis_fields(trace):
    import tempfile
    from pathlib import Path

    from repro.pcap import read_trace, write_trace

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.pcap"
        write_trace(trace, path)
        loaded = read_trace(path)

    assert len(loaded) == len(trace)
    if len(trace):
        assert np.array_equal(loaded.time_us, trace.time_us)
        assert np.array_equal(loaded.ftype, trace.ftype)
        assert np.array_equal(loaded.rate_code, trace.rate_code)
        assert np.array_equal(loaded.size, trace.size)
        assert np.array_equal(loaded.retry, trace.retry)
        assert np.array_equal(loaded.channel, trace.channel)
        # Utilization — the paper's central metric — survives exactly.
        assert np.allclose(
            utilization_series(loaded).percent,
            utilization_series(trace).percent,
        )


@given(traces)
@settings(max_examples=40, deadline=None)
def test_online_monitor_matches_offline(trace):
    from repro.core.online import OnlineCongestionMonitor

    if len(trace) == 0:
        return
    monitor = OnlineCongestionMonitor()
    monitor.ingest_trace(trace)
    monitor.flush()
    online = monitor.utilization_array()
    offline = utilization_series(trace).percent
    n = min(len(online), len(offline))
    assert np.allclose(online[:n], offline[:n])
