"""Cross-validation: DCF simulator vs. analytical models.

The simulator and the Cantieni/Bianchi-style fixed-point model are
independent implementations of the same MAC; under the model's
assumptions (saturated stations, one rate, one frame size, clean
channel) they must agree on saturation throughput to first order, and
disagree in the *expected direction* elsewhere.  This is the strongest
internal-consistency check the reproduction has.
"""

import numpy as np
import pytest

from repro.baselines import FrameClass, multirate_dcf_model, theoretical_maximum_throughput
from repro.core import throughput_per_second
from repro.frames import FrameType
from repro.sim import ConstantRate, ScenarioConfig, run_scenario, uniform_sizes


def _saturated_cell(n_stations: int, size: int = 1000, seed: int = 3):
    """All-uplink saturated cell: clean links, fixed 11 Mbps, one size."""
    config = ScenarioConfig(
        n_stations=n_stations,
        duration_s=10.0,
        seed=seed,
        room_width_m=12.0,
        room_depth_m=10.0,
        shadowing_sigma_db=0.0,
        rate_algorithm="fixed",
        obstructed_fraction=0.0,
        uplink=ConstantRate(900.0),   # 7.2 Mbps offered: true saturation
        downlink=ConstantRate(0.0),
        size_mix=uniform_sizes(size, size),
    )
    return run_scenario(config)


def _sim_data_throughput_mbps(result) -> float:
    """Delivered (acked) data payload bits per second from ground truth."""
    delivered = sum(s.mac.stats.data_successes for s in result.stations)
    sizes = 1000  # fixed by the scenario
    return delivered * sizes * 8 / result.config.duration_s / 1e6


@pytest.mark.parametrize("n_stations", [2, 5, 10])
def test_saturation_throughput_matches_bianchi(n_stations):
    result = _saturated_cell(n_stations)
    sim_mbps = _sim_data_throughput_mbps(result)
    model = multirate_dcf_model(
        (FrameClass(1000, 11.0, n_stations),), snr_db=30.0
    )
    # First-order agreement: within 35 % of the analytical value.  (The
    # model burns exactly one exchange per collision and ignores NAV
    # and ACK-timeout dead time, so it is systematically optimistic.)
    assert sim_mbps == pytest.approx(model.total_throughput_mbps, rel=0.35)
    # And the model is, as expected, the optimistic side for crowds.
    if n_stations >= 5:
        assert sim_mbps <= model.total_throughput_mbps * 1.1


def test_throughput_decreases_with_population():
    """Both the simulator and the model agree on the contention trend."""
    sim_values = [
        _sim_data_throughput_mbps(_saturated_cell(n)) for n in (2, 8, 16)
    ]
    model_values = [
        multirate_dcf_model((FrameClass(1000, 11.0, n),), snr_db=30.0
                            ).total_throughput_mbps
        for n in (2, 8, 16)
    ]
    assert sim_values[0] > sim_values[2]
    assert model_values[0] > model_values[2]


def test_single_sender_approaches_tmt():
    """One saturated sender with no contention is the TMT setting; the
    simulator must land within the backoff-spread of Jun's value."""
    result = _saturated_cell(1)
    sim_mbps = _sim_data_throughput_mbps(result)
    tmt = theoretical_maximum_throughput(1000, 11.0).throughput_mbps
    assert sim_mbps == pytest.approx(tmt, rel=0.1)


def test_collision_rate_rises_with_population():
    """The simulator's retry fraction tracks Bianchi's p trend."""
    def retry_fraction(result):
        truth = result.ground_truth
        data = truth.only_type(FrameType.DATA)
        return float(np.mean(data.retry)) if len(data) else 0.0

    small = retry_fraction(_saturated_cell(2))
    crowd = retry_fraction(_saturated_cell(16))
    assert crowd > small
