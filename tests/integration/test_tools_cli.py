"""Tests for the command-line toolkit and the report renderer."""

import pytest

from repro.core import analyze_trace
from repro.core.render import render_report
from repro.tools import build_parser, main


class TestRenderReport:
    def test_sections_present(self, small_scenario):
        report = analyze_trace(
            small_scenario.trace, small_scenario.roster, name="render-test"
        )
        text = render_report(report)
        assert "render-test" in text
        assert "Capture summary" in text
        assert "Utilization per second" in text
        assert "Congestion classes" in text
        assert "Fig 6" in text
        assert "Unrecorded-frame estimate" in text
        assert "Most active APs" in text

    def test_render_without_roster(self, small_scenario):
        report = analyze_trace(small_scenario.trace, name="no-roster")
        text = render_report(report)
        assert "Most active APs" not in text  # AP section needs a roster


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "out.pcap", "--stations", "4"])
        assert args.command == "simulate"
        assert args.stations == 4

    def test_simulate_then_analyze_then_info(self, tmp_path, capsys):
        pcap = tmp_path / "cli.pcap"
        rc = main(
            [
                "simulate", str(pcap),
                "--stations", "4", "--duration", "4",
                "--uplink-pps", "6", "--downlink-pps", "10",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert pcap.exists()

        rc = main(["analyze", str(pcap), "--name", "cli-session"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cli-session" in out
        assert "Congestion classes" in out

        rc = main(["info", str(pcap)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Capture summary" in out


    def test_analyze_empty_capture_fails(self, tmp_path, capsys):
        from repro.frames import Trace
        from repro.pcap import write_trace

        pcap = tmp_path / "empty.pcap"
        write_trace(Trace.empty(), pcap)
        rc = main(["analyze", str(pcap)])
        assert rc == 1
        assert "empty capture" in capsys.readouterr().err

    def test_analyze_mixed_empty_still_prints_nonempty(self, tmp_path, capsys):
        """One empty capture must not swallow the other reports."""
        from repro.frames import Trace
        from repro.pcap import write_trace

        good = tmp_path / "good.pcap"
        rc = main(
            [
                "simulate", str(good),
                "--stations", "3", "--duration", "3",
                "--uplink-pps", "5", "--downlink-pps", "8",
            ]
        )
        assert rc == 0
        capsys.readouterr()
        empty = tmp_path / "empty.pcap"
        write_trace(Trace.empty(), empty)

        rc = main(["analyze", str(good), str(empty)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "Congestion classes" in captured.out  # good report printed
        assert "empty capture" in captured.err

    def test_analyze_bad_worker_and_chunk_args(self, tmp_path, capsys):
        rc = main(["analyze", "whatever.pcap", "--workers", "0"])
        assert rc == 2
        assert "--workers" in capsys.readouterr().err
        rc = main(["analyze", "whatever.pcap", "--chunk-frames", "0"])
        assert rc == 2
        assert "--chunk-frames" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCampaignCli:
    def test_list_scenarios(self, capsys):
        assert main(["campaign", "--list"]) == 0
        out = capsys.readouterr().out
        assert "ramp" in out and "hidden-terminal" in out

    def test_unknown_scenario_rejected(self, capsys):
        assert main(["campaign", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_vary_syntax_rejected(self, capsys):
        rc = main(["campaign", "--vary", "n_stations"])
        assert rc == 2
        assert "campaign error" in capsys.readouterr().err

    def test_small_grid_runs_and_writes_summary(self, tmp_path, capsys):
        out_path = tmp_path / "campaign.txt"
        rc = main(
            [
                "campaign",
                "--scenario", "ramp",
                "--vary", "n_stations=4,6",
                "--fix", "duration_s=1.5",
                "--workers", "1",
                "--out", str(out_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 cells" in out
        assert "n_stations=4" in out
        assert out_path.exists()
        assert "utilization knee" in out_path.read_text()


class TestProfileFlag:
    def test_simulate_profile_prints_cprofile_table(self, tmp_path, capsys):
        from repro.tools import main

        rc = main(
            [
                "simulate",
                str(tmp_path / "prof.pcap"),
                "--stations", "3",
                "--duration", "1",
                "--profile",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cProfile [fidelity=default]: top 20 by cumulative time" in out
        assert "cumtime" in out

    def test_campaign_profile_forces_serial(self, capsys):
        from repro.tools import main

        rc = main(
            [
                "campaign",
                "--scenario", "ramp",
                "--vary", "n_stations=3",
                "--fix", "duration_s=1.0",
                "--workers", "4",
                "--profile",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "cProfile [fidelity=default]: top 20 by cumulative time" in captured.out
        assert "forces --workers 1" in captured.err


SPEC_TOML = """\
name = "cli-spec"
scenario = "ramp"

[params]
duration_s = 1.5

[vary]
n_stations = [3, 4]
"""


class TestRunCli:
    """The `run <spec>` subcommand (the repro.api front door on the CLI)."""

    def test_run_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "study.toml"
        spec.write_text(SPEC_TOML)
        rc = main(["run", str(spec), "--workers", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cli-spec" in out
        assert "n_stations=3" in out and "n_stations=4" in out

    def test_validate_only(self, tmp_path, capsys):
        spec = tmp_path / "study.toml"
        spec.write_text(SPEC_TOML)
        rc = main(["run", str(spec), "--validate-only"])
        assert rc == 0
        assert "OK (campaign, 2 cells)" in capsys.readouterr().out

    def test_set_overrides_params(self, tmp_path, capsys):
        spec = tmp_path / "study.toml"
        spec.write_text('scenario = "ramp"\n[params]\nduration_s = 1.5\n')
        rc = main(
            ["run", str(spec), "--set", "n_stations=3", "--validate-only"]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(["run", str(spec), "--set", "n_statoins=3"])
        assert rc == 2
        assert "did you mean 'n_stations'" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        import json

        spec = tmp_path / "study.toml"
        spec.write_text(SPEC_TOML.replace("[3, 4]", "[3]"))
        rc = main(["run", str(spec), "--workers", "1", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "campaign"
        assert payload["spec"]["name"] == "cli-spec"

    def test_store_resume_round_trip(self, tmp_path, capsys):
        spec = tmp_path / "study.toml"
        spec.write_text(SPEC_TOML)
        store = tmp_path / "store"
        rc = main(["run", str(spec), "--workers", "1", "--store", str(store)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["run", str(spec), "--workers", "1", "--store", str(store)])
        assert rc == 0
        assert "2 from store" in capsys.readouterr().out

    def test_missing_spec_file(self, tmp_path, capsys):
        rc = main(["run", str(tmp_path / "nope.toml")])
        assert rc == 2
        assert "cannot read spec" in capsys.readouterr().err

    def test_unknown_spec_key_suggests(self, tmp_path, capsys):
        spec = tmp_path / "bad.toml"
        spec.write_text('scenario = "ramp"\n[varry]\nn_stations = [3]\n')
        rc = main(["run", str(spec)])
        assert rc == 2
        assert "did you mean 'vary'" in capsys.readouterr().err

    def test_out_writes_rendered_result(self, tmp_path, capsys):
        spec = tmp_path / "study.toml"
        spec.write_text(SPEC_TOML.replace("[3, 4]", "[3]"))
        out_path = tmp_path / "result.txt"
        rc = main(["run", str(spec), "--workers", "1", "--out", str(out_path)])
        assert rc == 0
        assert "n_stations=3" in out_path.read_text()


class TestTypoSuggestions:
    """Silent-typo fix: unknown keys fail fast with suggestions."""

    def test_campaign_vary_typo_suggests(self, capsys):
        rc = main(
            ["campaign", "--scenario", "ramp", "--vary", "n_statoins=3,4"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "did you mean 'n_stations'" in err

    def test_campaign_fix_typo_suggests(self, capsys):
        rc = main(
            [
                "campaign",
                "--scenario", "ramp",
                "--vary", "n_stations=3",
                "--fix", "durration_s=1.0",
            ]
        )
        assert rc == 2
        assert "did you mean 'duration_s'" in capsys.readouterr().err

    def test_campaign_scenario_typo_suggests(self, capsys):
        rc = main(["campaign", "--scenario", "rampp", "--vary", "n_stations=3"])
        assert rc == 2
        assert "did you mean 'ramp'" in capsys.readouterr().err


class TestServeCli:
    def test_parser_serve_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0"])
        assert args.command == "serve"
        assert args.port == 0
        assert args.host == "127.0.0.1"
        assert args.queue_chunks == 8
        assert args.max_feeds == 64
        assert args.port_file is None

    def test_analyze_truncated_capture_reports_failure(self, tmp_path, capsys):
        """A broken file is reported on stderr; good reports still print."""
        good = tmp_path / "good.pcap"
        rc = main(
            [
                "simulate", str(good),
                "--stations", "3", "--duration", "3",
                "--uplink-pps", "5", "--downlink-pps", "8",
            ]
        )
        assert rc == 0
        capsys.readouterr()
        broken = tmp_path / "broken.pcap"
        broken.write_bytes(good.read_bytes()[:-11])

        rc = main(["analyze", str(good), str(broken)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "Congestion classes" in captured.out
        assert "TruncatedPcapError" in captured.err

    def test_serve_subprocess_end_to_end(self, tmp_path):
        """Boot the real daemon process, drive it with urllib, SIGINT it."""
        import json
        import os
        import signal
        import subprocess
        import sys
        import urllib.request

        from tests.waiting import wait_until

        def _assert_alive(proc):
            assert proc.poll() is None, proc.stdout.read().decode()

        port_file = tmp_path / "ports.json"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--port-file", str(port_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            wait_until(
                port_file.exists,
                timeout_s=60,
                message="daemon never wrote ports",
                on_tick=lambda: _assert_alive(proc),
            )
            port = json.loads(port_file.read_text())["http_port"]
            base = f"http://127.0.0.1:{port}"
            health = json.load(
                urllib.request.urlopen(base + "/health", timeout=10)
            )
            assert health["status"] == "ok"
            request = urllib.request.Request(
                base + "/feeds",
                data=json.dumps(
                    {
                        "kind": "scenario",
                        "scenario": "ramp",
                        "params": {"duration_s": 1},
                        "name": "sim",
                    }
                ).encode(),
            )
            feed = json.load(urllib.request.urlopen(request, timeout=30))
            assert feed["id"] == "sim"
            def _feed_settled():
                info = json.load(
                    urllib.request.urlopen(base + "/feeds/sim", timeout=10)
                )
                return info if info["state"] != "running" else None

            info = wait_until(
                _feed_settled, timeout_s=60, message="scenario never finished"
            )
            assert info["state"] == "closed"
            report = json.load(
                urllib.request.urlopen(base + "/feeds/sim/report", timeout=10)
            )
            assert report["summary"]["frames"] == info["frames_in"]
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
