"""Typed truncation errors: damage reports carry offset + clean-frame count.

A sniffer killed mid-write (the paper's monitors ran for days) leaves a
pcap that ends mid-record.  The reader must (a) raise
:class:`TruncatedPcapError` — never a raw ``struct.error`` — with the
byte offset of the damage and how many frames decoded cleanly, and
(b) in streaming mode, yield the entire clean prefix *before* raising,
so the serve daemon can finalize a partial report.
"""

import struct

import pytest

from repro.frames import Trace
from repro.pcap import TruncatedPcapError, read_trace, write_trace
from repro.pipeline import pcap_chunks

from ..conftest import ack, data


N_FRAMES = 6


@pytest.fixture
def capture(tmp_path):
    """A clean 6-frame pcap plus its per-record header offsets."""
    rows = []
    for i in range(N_FRAMES // 2):
        rows.append(data(10_000 * i + 1_000, src=10, dst=1, seq=i))
        rows.append(ack(10_000 * i + 2_400, src=1, dst=10))
    path = tmp_path / "capture.pcap"
    write_trace(Trace.from_rows(rows), path)
    raw = path.read_bytes()
    offsets = []
    offset = 24
    while offset < len(raw):
        incl_len = struct.unpack("<I", raw[offset + 8 : offset + 12])[0]
        offsets.append(offset)
        offset += 16 + incl_len
    assert len(offsets) == N_FRAMES
    return path, raw, offsets


def collect_until_error(path, batch_frames=2):
    """Drain the batch generator, returning (clean_frames, error)."""
    frames = 0
    try:
        for batch in pcap_chunks(path, batch_frames):
            frames += len(batch)
    except TruncatedPcapError as error:
        return frames, error
    return frames, None


def test_truncated_record_header(capture, tmp_path):
    path, raw, offsets = capture
    cut = tmp_path / "cut.pcap"
    cut.write_bytes(raw[: offsets[-1] + 8])  # half a record header
    with pytest.raises(TruncatedPcapError) as exc:
        read_trace(cut)
    assert exc.value.byte_offset == offsets[-1]
    assert exc.value.frames_read == N_FRAMES - 1


def test_truncated_record_body(capture, tmp_path):
    path, raw, offsets = capture
    cut = tmp_path / "cut.pcap"
    cut.write_bytes(raw[: offsets[-1] + 16 + 5])  # header + 5 body bytes
    with pytest.raises(TruncatedPcapError) as exc:
        read_trace(cut)
    assert exc.value.byte_offset == offsets[-1] + 16
    assert exc.value.frames_read == N_FRAMES - 1


def test_undecodable_record(capture, tmp_path):
    """Garbage where a radiotap header should be: typed error, not struct."""
    path, raw, offsets = capture
    bad = bytearray(raw)
    start = offsets[-1] + 16
    bad[start : start + 8] = b"\xff" * 8
    corrupt = tmp_path / "corrupt.pcap"
    corrupt.write_bytes(bytes(bad))
    with pytest.raises(TruncatedPcapError, match="undecodable") as exc:
        read_trace(corrupt)
    assert exc.value.byte_offset == offsets[-1]
    assert exc.value.frames_read == N_FRAMES - 1


def test_streaming_yields_clean_prefix_before_raising(capture, tmp_path):
    path, raw, offsets = capture
    cut = tmp_path / "cut.pcap"
    cut.write_bytes(raw[: offsets[-1] + 16 + 3])
    frames, error = collect_until_error(cut, batch_frames=2)
    assert error is not None
    assert frames == N_FRAMES - 1          # every clean frame was delivered
    assert error.frames_read == frames


def test_streaming_partial_batch_flushed(capture, tmp_path):
    """Damage inside a half-full batch still flushes the buffered rows."""
    path, raw, offsets = capture
    cut = tmp_path / "cut.pcap"
    cut.write_bytes(raw[: offsets[3] + 8])  # 3 clean frames, batch size 2
    frames, error = collect_until_error(cut, batch_frames=2)
    assert frames == 3
    assert error.frames_read == 3
    assert error.byte_offset == offsets[3]


def test_damage_in_first_record(capture, tmp_path):
    path, raw, offsets = capture
    cut = tmp_path / "cut.pcap"
    cut.write_bytes(raw[: offsets[0] + 4])
    frames, error = collect_until_error(cut)
    assert frames == 0
    assert error.frames_read == 0
    assert error.byte_offset == offsets[0]


def test_error_message_names_offset_and_frames(capture, tmp_path):
    path, raw, offsets = capture
    cut = tmp_path / "cut.pcap"
    cut.write_bytes(raw[: offsets[-1] + 2])
    with pytest.raises(TruncatedPcapError) as exc:
        read_trace(cut)
    message = str(exc.value)
    assert f"byte offset {offsets[-1]}" in message
    assert f"{N_FRAMES - 1} frames read cleanly" in message


def test_is_a_value_error(capture, tmp_path):
    """Back-compat: callers catching ValueError keep working."""
    path, raw, offsets = capture
    cut = tmp_path / "cut.pcap"
    cut.write_bytes(raw[: offsets[-1] + 8])
    with pytest.raises(ValueError, match="truncated"):
        read_trace(cut)


def test_clean_file_reads_without_error(capture):
    path, raw, offsets = capture
    trace = read_trace(path)
    assert len(trace) == N_FRAMES
