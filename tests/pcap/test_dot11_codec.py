"""Tests for the 802.11 MAC header codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frames import BROADCAST, NO_NODE, FrameType
from repro.pcap import decode_frame, encode_frame, mac_to_node, node_to_mac


class TestMacAddresses:
    def test_round_trip(self):
        for node in (0, 1, 255, 4095, 60_000):
            assert mac_to_node(node_to_mac(node)) == node

    def test_broadcast(self):
        assert node_to_mac(BROADCAST) == b"\xff" * 6
        assert mac_to_node(b"\xff" * 6) == BROADCAST

    def test_locally_administered_prefix(self):
        assert node_to_mac(5)[0] == 0x02

    def test_foreign_mac_rejected(self):
        with pytest.raises(ValueError):
            mac_to_node(b"\x00\x11\x22\x33\x44\x55")

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ValueError):
            node_to_mac(-1)


class TestDataFrames:
    def test_round_trip_with_payload(self):
        raw = encode_frame(
            FrameType.DATA, src=10, dst=1, seq=777, retry=True, body_size=500
        )
        frame = decode_frame(raw)
        assert frame.ftype == FrameType.DATA
        assert frame.src == 10 and frame.dst == 1
        assert frame.seq == 777
        assert frame.retry
        assert frame.body_size == 500
        assert len(raw) == 24 + 500

    def test_seq_wraps_at_12_bits(self):
        frame = decode_frame(encode_frame(FrameType.DATA, 1, 2, seq=5000))
        assert frame.seq == 5000 % 4096

    def test_beacon_broadcast(self):
        frame = decode_frame(
            encode_frame(FrameType.BEACON, src=1, dst=BROADCAST, body_size=56)
        )
        assert frame.ftype == FrameType.BEACON
        assert frame.dst == BROADCAST
        assert frame.src == 1

    def test_mgmt_round_trip(self):
        frame = decode_frame(encode_frame(FrameType.MGMT, src=9, dst=1))
        assert frame.ftype == FrameType.MGMT


class TestControlFrames:
    def test_ack_loses_transmitter(self):
        """Real ACKs carry only the receiver address (paper §4.4)."""
        frame = decode_frame(encode_frame(FrameType.ACK, src=1, dst=10))
        assert frame.ftype == FrameType.ACK
        assert frame.dst == 10
        assert frame.src == NO_NODE

    def test_cts_loses_transmitter(self):
        frame = decode_frame(encode_frame(FrameType.CTS, src=1, dst=11))
        assert frame.src == NO_NODE
        assert frame.dst == 11

    def test_rts_keeps_both_addresses(self):
        frame = decode_frame(encode_frame(FrameType.RTS, src=11, dst=1))
        assert frame.src == 11 and frame.dst == 1

    def test_control_frame_lengths(self):
        assert len(encode_frame(FrameType.ACK, 1, 2)) == 10
        assert len(encode_frame(FrameType.CTS, 1, 2)) == 10
        assert len(encode_frame(FrameType.RTS, 1, 2)) == 16


class TestErrors:
    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            decode_frame(b"\x00" * 4)

    def test_truncated_rts_rejected(self):
        raw = encode_frame(FrameType.RTS, 1, 2)[:12]
        with pytest.raises(ValueError, match="truncated RTS"):
            decode_frame(raw)

    def test_truncated_data_rejected(self):
        raw = encode_frame(FrameType.DATA, 1, 2)[:20]
        with pytest.raises(ValueError, match="truncated"):
            decode_frame(raw)


@given(
    ftype=st.sampled_from([FrameType.DATA, FrameType.MGMT, FrameType.BEACON]),
    src=st.integers(min_value=0, max_value=60000),
    dst=st.integers(min_value=0, max_value=60000),
    seq=st.integers(min_value=0, max_value=4095),
    retry=st.booleans(),
    body=st.integers(min_value=0, max_value=1500),
)
def test_data_like_round_trip_property(ftype, src, dst, seq, retry, body):
    frame = decode_frame(
        encode_frame(ftype, src=src, dst=dst, seq=seq, retry=retry, body_size=body)
    )
    assert (frame.ftype, frame.src, frame.dst, frame.seq, frame.retry, frame.body_size) == (
        ftype, src, dst, seq, retry, body,
    )
