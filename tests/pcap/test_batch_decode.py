"""Vectorized pcap decode parity: byte-identical to the scalar codecs.

:func:`repro.pcap.pcapio.read_trace_batches` bulk-decodes records with
numpy gathers and falls back to the per-record scalar codecs for
anything unusual.  The scalar path (:func:`_decode_record_scalar`) *is*
the behavioural reference — this suite re-decodes every capture through
a pure scalar loop and asserts the vectorized reader produces identical
columns, identical batch boundaries, and identical errors (type,
message, byte offset, clean-frame count) for every corruption mode that
drops a record off the fast path.
"""

import numpy as np
import pytest

from repro.frames import TRACE_COLUMNS
from repro.pcap import TruncatedPcapError, write_trace
from repro.pcap.pcapio import (
    _RowBuffer,
    _decode_record_scalar,
    _scan_records,
    read_trace_batches,
)
from repro.sim import build_scenario


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    """A realistic simulated capture (data/ACK/RTS/CTS/beacons/retries)
    plus its per-record absolute offsets."""
    built = build_scenario(
        "uniform",
        n_stations=4,
        duration_s=2.0,
        seed=7,
        rtscts_fraction=0.5,
    )
    trace = built.run().ground_truth
    path = tmp_path_factory.mktemp("parity") / "capture.pcap"
    write_trace(trace, path)
    raw = path.read_bytes()
    rel_offs, consumed = _scan_records(raw[24:])
    assert consumed == len(raw) - 24
    return path, raw, [24 + off for off in rel_offs]


def scalar_reference(path, batch_frames):
    """Decode ``path`` record-by-record through the scalar codecs.

    Mirrors the generator contract exactly: complete batches are
    "yielded" as they fill, the clean remainder is flushed only before
    a :class:`TruncatedPcapError` (any other error loses it — the
    legacy behaviour), and the error itself is returned for comparison.
    """
    raw = path.read_bytes()[24:]
    rel_offs, consumed = _scan_records(raw)
    rows = _RowBuffer()
    yielded = []
    frames_read = 0
    error = None
    for off in rel_offs:
        try:
            rows.append_row(
                _decode_record_scalar(raw, off, 24 + off, frames_read, path)
            )
        except Exception as exc:  # noqa: BLE001 - parity on any error
            error = exc
            break
        frames_read += 1
        if len(rows) >= batch_frames:
            yielded.append(rows.take(batch_frames))
    if error is None and consumed < len(raw):
        leftover = len(raw) - consumed
        kind = "header" if leftover < 16 else "body"
        base = 24 + consumed + (0 if leftover < 16 else 16)
        error = TruncatedPcapError(
            f"{path}: truncated record {kind}",
            byte_offset=base,
            frames_read=frames_read,
        )
    if len(rows) and (
        error is None or isinstance(error, TruncatedPcapError)
    ):
        yielded.append(rows.flush())
    return yielded, error


def vectorized(path, batch_frames):
    batches = []
    error = None
    try:
        for batch in read_trace_batches(path, batch_frames):
            batches.append(batch)
    except Exception as exc:  # noqa: BLE001 - parity on any error
        error = exc
    return batches, error


def assert_parity(path, batch_frames=500):
    reference, ref_error = scalar_reference(path, batch_frames)
    batches, vec_error = vectorized(path, batch_frames)
    assert (ref_error is None) == (vec_error is None)
    if ref_error is not None:
        assert type(vec_error).__name__ == type(ref_error).__name__
        assert str(vec_error) == str(ref_error)
        if isinstance(ref_error, TruncatedPcapError):
            assert vec_error.byte_offset == ref_error.byte_offset
            assert vec_error.frames_read == ref_error.frames_read
    assert [len(b) for b in batches] == [len(b) for b in reference]
    # Clean (non-final) batches honour the requested size exactly.
    for batch in batches[:-1]:
        assert len(batch) == batch_frames
    for name in TRACE_COLUMNS:
        for vec_batch, ref_batch in zip(batches, reference):
            vec_col = vec_batch.column(name)
            ref_col = ref_batch.column(name)
            assert vec_col.dtype == ref_col.dtype, name
            assert np.array_equal(vec_col, ref_col), name
    return batches, vec_error


class TestCleanCapture:
    @pytest.mark.parametrize("batch_frames", [100_000, 1_000, 7])
    def test_columns_byte_identical(self, capture, batch_frames):
        path, _, _ = capture
        batches, error = assert_parity(path, batch_frames)
        assert error is None
        assert sum(len(b) for b in batches) > 0


class TestCorruptionFallsBackIdentically:
    """Each mutation kicks records onto the scalar path (or stops the
    scan); the observable behaviour must not change."""

    def _mutated(self, tmp_path, raw, mutate):
        data = bytearray(raw)
        mutate(data)
        path = tmp_path / "mutated.pcap"
        path.write_bytes(bytes(data))
        return path

    def test_truncated_record_header(self, capture, tmp_path):
        path, raw, offsets = capture
        cut = tmp_path / "cut.pcap"
        cut.write_bytes(raw[: offsets[50] + 5])
        _, error = assert_parity(cut)
        assert isinstance(error, TruncatedPcapError)
        assert "truncated record header" in str(error)

    def test_truncated_record_body(self, capture, tmp_path):
        path, raw, offsets = capture
        cut = tmp_path / "cut.pcap"
        cut.write_bytes(raw[: offsets[50] + 20])
        _, error = assert_parity(cut)
        assert isinstance(error, TruncatedPcapError)
        assert "truncated record body" in str(error)

    def test_bad_radiotap_version(self, capture, tmp_path):
        path, raw, offsets = capture

        def mutate(data):
            data[offsets[30] + 16] = 9  # radiotap version byte

        _, error = assert_parity(self._mutated(tmp_path, raw, mutate))
        assert isinstance(error, TruncatedPcapError)
        assert "undecodable record" in str(error)

    def test_foreign_mac_prefix(self, capture, tmp_path):
        path, raw, offsets = capture

        def mutate(data):
            data[offsets[40] + 16 + 24 + 4] = 0x55  # addr1 first byte

        _, error = assert_parity(self._mutated(tmp_path, raw, mutate))
        assert isinstance(error, TruncatedPcapError)

    def test_non_dot11b_rate_raises_bare_valueerror(self, capture, tmp_path):
        path, raw, offsets = capture

        def mutate(data):
            data[offsets[35] + 16 + 17] = 12  # 6 Mbps: not an 11b rate

        _, error = assert_parity(self._mutated(tmp_path, raw, mutate))
        assert type(error) is ValueError

    def test_unknown_frame_type(self, capture, tmp_path):
        path, raw, offsets = capture

        def mutate(data):
            data[offsets[45] + 16 + 24] = (1 << 2) | (0 << 4)  # ctrl/0

        _, error = assert_parity(self._mutated(tmp_path, raw, mutate))
        assert isinstance(error, TruncatedPcapError)
