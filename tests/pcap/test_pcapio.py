"""Tests for pcap trace IO."""

import struct

import numpy as np
import pytest

from repro.frames import NO_NODE, FrameType, Trace
from repro.pcap import PAPER_SNAPLEN, read_trace, write_trace

from ..conftest import ack, beacon, cts, data, rts


@pytest.fixture
def mixed_trace():
    return Trace.from_rows(
        [
            beacon(0, src=1),
            data(10_000, src=10, dst=1, size=1400, rate=11.0, seq=7, snr=22.0),
            ack(12_000, src=1, dst=10),
            rts(50_000, src=11, dst=1),
            cts(50_500, src=1, dst=11),
            data(51_000, src=11, dst=1, size=333, rate=2.0, seq=9, retry=True),
            ack(53_000, src=1, dst=11),
        ]
    )


class TestRoundTrip:
    def test_write_read_preserves_analysis_fields(self, mixed_trace, tmp_path):
        path = tmp_path / "capture.pcap"
        n = write_trace(mixed_trace, path)
        assert n == len(mixed_trace)
        loaded = read_trace(path)
        assert len(loaded) == len(mixed_trace)
        assert np.array_equal(loaded.time_us, mixed_trace.time_us)
        assert np.array_equal(loaded.ftype, mixed_trace.ftype)
        assert np.array_equal(loaded.rate_code, mixed_trace.rate_code)
        assert np.array_equal(loaded.size, mixed_trace.size)
        assert np.array_equal(loaded.dst, mixed_trace.dst)
        assert np.array_equal(loaded.retry, mixed_trace.retry)
        assert np.array_equal(loaded.channel, mixed_trace.channel)

    def test_ack_cts_transmitter_lost_on_air(self, mixed_trace, tmp_path):
        """ACK/CTS have no TA in 802.11; their src reads back NO_NODE."""
        path = tmp_path / "capture.pcap"
        write_trace(mixed_trace, path)
        loaded = read_trace(path)
        control = (loaded.ftype == int(FrameType.ACK)) | (
            loaded.ftype == int(FrameType.CTS)
        )
        assert np.all(loaded.src[control] == NO_NODE)
        assert np.all(loaded.src[~control] == mixed_trace.src[~control])

    def test_snaplen_truncation_preserves_sizes(self, mixed_trace, tmp_path):
        """The paper's 250-byte snap length must not corrupt frame sizes."""
        path = tmp_path / "capture.pcap"
        write_trace(mixed_trace, path, snaplen=PAPER_SNAPLEN)
        loaded = read_trace(path)
        assert np.array_equal(loaded.size, mixed_trace.size)
        # File is actually truncated: smaller than a full-size write.
        full = tmp_path / "full.pcap"
        write_trace(mixed_trace, full, snaplen=65535)
        assert path.stat().st_size < full.stat().st_size

    def test_snr_round_trips_to_1db(self, mixed_trace, tmp_path):
        path = tmp_path / "capture.pcap"
        write_trace(mixed_trace, path)
        loaded = read_trace(path)
        assert np.allclose(loaded.snr_db, mixed_trace.snr_db, atol=0.51)

    def test_analysis_equivalence(self, small_scenario, tmp_path):
        """Utilization computed from the pcap matches the original trace."""
        from repro.core import utilization_series

        path = tmp_path / "scenario.pcap"
        write_trace(small_scenario.trace, path)
        loaded = read_trace(path)
        original = utilization_series(small_scenario.trace)
        reloaded = utilization_series(loaded)
        assert np.allclose(original.percent, reloaded.percent)


class TestErrors:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 40)
        with pytest.raises(ValueError, match="magic"):
            read_trace(path)

    def test_too_short_rejected(self, tmp_path):
        path = tmp_path / "tiny.pcap"
        path.write_bytes(b"\x01")
        with pytest.raises(ValueError, match="too short"):
            read_trace(path)

    def test_wrong_linktype_rejected(self, tmp_path):
        path = tmp_path / "eth.pcap"
        path.write_bytes(
            struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        )
        with pytest.raises(ValueError, match="linktype"):
            read_trace(path)

    def test_truncated_record_rejected(self, mixed_trace, tmp_path):
        path = tmp_path / "cut.pcap"
        write_trace(mixed_trace, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])
        with pytest.raises(ValueError, match="truncated"):
            read_trace(path)

    def test_empty_trace_round_trip(self, tmp_path):
        path = tmp_path / "empty.pcap"
        write_trace(Trace.empty(), path)
        assert len(read_trace(path)) == 0
