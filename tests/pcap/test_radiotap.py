"""Tests for the radiotap header codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pcap import CHANNEL_FREQ_MHZ, RadiotapHeader, channel_from_freq


class TestChannelMap:
    def test_known_frequencies(self):
        assert CHANNEL_FREQ_MHZ[1] == 2412
        assert CHANNEL_FREQ_MHZ[6] == 2437
        assert CHANNEL_FREQ_MHZ[11] == 2462
        assert CHANNEL_FREQ_MHZ[14] == 2484

    def test_round_trip(self):
        for channel in (1, 6, 11):
            assert channel_from_freq(CHANNEL_FREQ_MHZ[channel]) == channel

    def test_unknown_frequency_rejected(self):
        with pytest.raises(ValueError):
            channel_from_freq(5000)


class TestEncodeDecode:
    def test_round_trip(self):
        header = RadiotapHeader(
            tsft_us=123_456_789, rate_mbps=5.5, channel=6,
            signal_dbm=-57, noise_dbm=-96,
        )
        decoded, length = RadiotapHeader.decode(header.encode())
        assert decoded == header
        assert length == len(header.encode())

    def test_snr_property(self):
        header = RadiotapHeader(
            tsft_us=0, rate_mbps=1.0, channel=1, signal_dbm=-60, noise_dbm=-96
        )
        assert header.snr_db == 36.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            RadiotapHeader(
                tsft_us=0, rate_mbps=0.0, channel=1, signal_dbm=-60, noise_dbm=-96
            ).encode()

    def test_invalid_channel_rejected(self):
        with pytest.raises(ValueError):
            RadiotapHeader(
                tsft_us=0, rate_mbps=1.0, channel=99, signal_dbm=-60, noise_dbm=-96
            ).encode()

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            RadiotapHeader.decode(b"\x00\x00\x04")

    def test_wrong_version_rejected(self):
        header = bytearray(
            RadiotapHeader(
                tsft_us=0, rate_mbps=1.0, channel=1, signal_dbm=-60, noise_dbm=-96
            ).encode()
        )
        header[0] = 1
        with pytest.raises(ValueError, match="version"):
            RadiotapHeader.decode(bytes(header))

    def test_signal_clamped_to_byte_range(self):
        header = RadiotapHeader(
            tsft_us=0, rate_mbps=1.0, channel=1, signal_dbm=500, noise_dbm=-500
        )
        decoded, _ = RadiotapHeader.decode(header.encode())
        assert decoded.signal_dbm == 127
        assert decoded.noise_dbm == -128


@given(
    tsft=st.integers(min_value=0, max_value=2**63),
    rate=st.sampled_from([1.0, 2.0, 5.5, 11.0]),
    channel=st.sampled_from([1, 6, 11]),
    signal=st.integers(min_value=-110, max_value=0),
)
def test_round_trip_property(tsft, rate, channel, signal):
    header = RadiotapHeader(
        tsft_us=tsft, rate_mbps=rate, channel=channel,
        signal_dbm=signal, noise_dbm=-96,
    )
    decoded, _ = RadiotapHeader.decode(header.encode())
    assert decoded == header
