"""Tests for the parallel campaign runner and its summaries."""

import pytest

from repro.campaign import (
    CampaignCell,
    ParameterGrid,
    campaign_table,
    delivery_curve,
    load_knee,
    render_campaign,
    run_campaign,
    utilization_knee,
)

#: A small but meaningful grid: 4 cells, ~2 s of simulation each.
GRID = ParameterGrid(
    "ramp",
    axes={"n_stations": [4, 8]},
    seeds=2,
    fixed={"duration_s": 2.0},
)


@pytest.fixture(scope="module")
def campaign_result():
    return run_campaign(GRID, workers=1, keep_reports=True)


class TestRunCampaign:
    def test_one_result_per_cell_in_order(self, campaign_result):
        assert len(campaign_result) == 4
        assert [c.name for c in campaign_result] == [
            c.name for c in GRID.cells()
        ]

    def test_cell_findings_are_populated(self, campaign_result):
        for cell in campaign_result:
            assert cell.n_frames > 0
            assert cell.frames_transmitted >= cell.n_frames
            assert 0.0 < cell.capture_ratio <= 1.0
            assert 0.0 <= cell.delivery_ratio <= 1.0
            assert cell.offered_pps > 0
            assert cell.elapsed_s > 0
            assert cell.report is not None
            assert cell.report.summary.n_frames == cell.n_frames

    def test_reports_dropped_unless_requested(self):
        single = [CampaignCell(scenario="ramp", params=(("duration_s", 1.0),))]
        result = run_campaign(single, workers=1)
        assert result.cells[0].report is None

    def test_parallel_matches_serial(self):
        """Worker count is invisible in the numbers (cells own their seeds)."""
        grid = ParameterGrid(
            "ramp", axes={"n_stations": [4, 6]}, fixed={"duration_s": 1.5}
        )
        serial = run_campaign(grid, workers=1)
        parallel = run_campaign(grid, workers=2)
        assert parallel.workers == 2

        def rows(result):
            out = []
            for cell in result:
                row = cell.as_row()
                row.pop("wall_s")
                out.append(row)
            return out

        assert rows(serial) == rows(parallel)

    def test_workers_one_vs_four_bit_identical(self):
        """Full-precision cell results are identical for 1 vs 4 workers —
        the simulator optimizations must not leak scheduling or RNG
        state across cells or processes."""
        grid = ParameterGrid(
            "ramp",
            axes={"n_stations": [4, 6]},
            seeds=2,
            fixed={"duration_s": 1.5},
        )
        serial = run_campaign(grid, workers=1)
        parallel = run_campaign(grid, workers=4)
        assert parallel.workers == 4
        compared = (
            "n_frames",
            "frames_transmitted",
            "offered_packets",
            "events_processed",
            "events_cancelled",
            "duration_s",
            "delivery_ratio",
            "capture_ratio",
            "mode_utilization",
            "peak_throughput_mbps",
            "peak_throughput_utilization",
            "high_congestion_fraction",
            "unrecorded_percent",
        )
        for a, b in zip(serial.cells, parallel.cells):
            assert a.name == b.name
            for field_name in compared:
                assert getattr(a, field_name) == getattr(b, field_name), (
                    a.name,
                    field_name,
                )

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="no cells"):
            run_campaign([], workers=1)

    def test_raising_cell_does_not_sink_completed_cells(self):
        """Regression: a worker exception used to propagate out of the
        pool and discard every finished result.  Now the failing cell's
        config and traceback are captured and the rest complete."""
        cells = [
            CampaignCell("ramp", params=(("duration_s", 1.0),), seed=0),
            CampaignCell(
                "ramp", params=(("duration_s", 1.0), ("n_stations", -1)), seed=0
            ),
            CampaignCell("ramp", params=(("duration_s", 1.0),), seed=1),
        ]
        result = run_campaign(cells, workers=1)
        assert [c.name for c in result.cells] == [cells[0].name, cells[2].name]
        assert all(c.n_frames > 0 for c in result.cells)
        (failure,) = result.failed
        assert failure.name == cells[1].name
        assert failure.error_type == "ValueError"
        assert "n_stations" in str(dict(failure.cell.params))
        assert "Traceback" in failure.traceback

    def test_raising_cell_in_process_pool(self):
        """Same regression through the pool path: the exception crosses
        the process boundary as a record, the campaign completes."""
        cells = [
            CampaignCell("ramp", params=(("duration_s", 1.0),), seed=s)
            for s in range(3)
        ] + [
            CampaignCell(
                "ramp", params=(("duration_s", 1.0), ("n_stations", -1)), seed=0
            )
        ]
        result = run_campaign(cells, workers=2)
        assert len(result.cells) == 3
        assert len(result.failed) == 1
        assert result.failed[0].error_type == "ValueError"
        # Summary keeps the failure visible instead of dropping it.
        text = render_campaign(result, title="T")
        assert "1 failed" in text
        assert "ValueError" in text
        assert result.failed[0].name in text

    def test_duplicate_cells_rejected(self):
        cell = CampaignCell(scenario="ramp", seed=1)
        with pytest.raises(ValueError, match="duplicate"):
            run_campaign([cell, cell], workers=1)


class TestSummaries:
    def test_table_has_one_row_per_cell(self, campaign_result):
        text = campaign_table(campaign_result)
        for cell in campaign_result:
            assert cell.name in text

    def test_delivery_curve_aggregates_seeds(self, campaign_result):
        curve = delivery_curve(campaign_result, "ramp")
        # Two parameter points (n_stations 4 and 8), seeds averaged out.
        assert len(curve) == 2
        offered = [p[0] for p in curve]
        assert offered == sorted(offered)
        for _, delivery in curve:
            assert 0.0 <= delivery <= 1.0

    def test_knees(self, campaign_result):
        util = utilization_knee(campaign_result, "ramp")
        assert util is None or 0.0 <= util <= 100.0
        knee = load_knee(campaign_result, "ramp", min_delivery=2.0)
        # Threshold 2.0 is unreachable, so the knee is the first point.
        assert knee == delivery_curve(campaign_result, "ramp")[0][0]
        assert load_knee(campaign_result, "ramp", min_delivery=-1.0) is None

    def test_render_campaign_mentions_everything(self, campaign_result):
        text = render_campaign(campaign_result, title="T")
        assert "T: 4 cells" in text
        assert "utilization knee" in text
        assert "delivery ratio vs offered load" in text
