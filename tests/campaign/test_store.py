"""Tests for the content-addressed campaign store and resumable runs.

The contract under test is the acceptance bar of the crash-safe
campaign work: resume is *bit-exact* (a resumed campaign's numbers are
identical to an uninterrupted run), *incremental* (only missing cells
are simulated; a fully-stored campaign dispatches zero work) and
*failure-tolerant* (a raising cell becomes a persisted record, not a
lost campaign).
"""

import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignCell,
    CampaignStore,
    FailedCell,
    ParameterGrid,
    cell_key,
    render_campaign,
    run_campaign,
)

#: Small but real: 4 cells, ~1 s of simulation each.
GRID = ParameterGrid(
    "ramp",
    axes={"n_stations": [4, 6]},
    seeds=2,
    fixed={"duration_s": 1.0},
)

#: CellResult fields compared at full precision between runs.  Excludes
#: ``elapsed_s`` (wall-clock jitter) and ``report``/``cell`` (objects).
NUMERIC_FIELDS = (
    "n_frames",
    "frames_transmitted",
    "offered_packets",
    "duration_s",
    "delivery_ratio",
    "capture_ratio",
    "mode_utilization",
    "peak_throughput_mbps",
    "peak_throughput_utilization",
    "high_congestion_fraction",
    "unrecorded_percent",
    "events_processed",
    "events_cancelled",
)


def _numbers(result):
    return [
        (c.name, tuple(getattr(c, f) for f in NUMERIC_FIELDS))
        for c in result.cells
    ]


class TestCellKey:
    def test_key_is_stable(self, tmp_path):
        cell = GRID.cells()[0]
        assert cell_key(cell, "salt") == cell_key(cell, "salt")
        store_a = CampaignStore(tmp_path / "a", salt="s")
        store_b = CampaignStore(tmp_path / "b", salt="s")
        assert store_a.key_for(cell) == store_b.key_for(cell)

    def test_key_covers_params_seed_scenario_and_salt(self):
        base = CampaignCell("ramp", params=(("duration_s", 1.0),), seed=0)
        variants = [
            CampaignCell("ramp", params=(("duration_s", 2.0),), seed=0),
            CampaignCell("ramp", params=(("duration_s", 1.0),), seed=1),
            CampaignCell("day", params=(("duration_s", 1.0),), seed=0),
        ]
        keys = {cell_key(c, "s") for c in [base] + variants}
        assert len(keys) == 4
        assert cell_key(base, "s") != cell_key(base, "other-salt")

    def test_key_sees_through_to_resolved_config(self):
        """Parameters that alter the resolved ScenarioConfig via library
        *defaults* (not just the literal cell params) separate keys —
        the hash covers the config the cell would actually run."""
        a = CampaignCell("hidden-terminal", params=(("uplink_pps", 22.0),))
        b = CampaignCell("hidden-terminal", params=(("uplink_pps", 44.0),))
        assert cell_key(a, "s") != cell_key(b, "s")

    def test_unresolvable_config_still_keyed(self):
        """A cell whose params cannot build a config (it will fail when
        run) still gets a usable, distinct key for its failure record."""
        bad = CampaignCell("ramp", params=(("n_stations", -1),), seed=0)
        worse = CampaignCell("ramp", params=(("n_stations", -2),), seed=0)
        assert cell_key(bad, "s") != cell_key(worse, "s")

    def test_mutable_schedule_caches_do_not_shift_keys(self):
        """ModulatedRate memoises multipliers as it runs; a warmed cache
        must hash identically to a cold one."""
        from repro.sim import scenario_config

        cell = CampaignCell("hotspot-plenary", params=(("duration_s", 1.0),))
        before = cell_key(cell, "s")
        config = scenario_config("hotspot-plenary", duration_s=1.0)
        config.uplink.rate_at(0)  # populate the epoch cache
        assert cell_key(cell, "s") == before


class TestStoreRoundtrip:
    def test_put_get_roundtrip_full_precision(self, tmp_path):
        result = run_campaign(
            [GRID.cells()[0]], workers=1, store_dir=tmp_path / "s"
        )
        store = CampaignStore(tmp_path / "s")
        loaded = store.get(result.cells[0].cell)
        assert loaded is not None
        for field_name in NUMERIC_FIELDS + ("elapsed_s",):
            assert getattr(loaded, field_name) == getattr(
                result.cells[0], field_name
            ), field_name

    def test_no_partial_records_left_behind(self, tmp_path):
        run_campaign(GRID, workers=1, store_dir=tmp_path / "s")
        leftovers = list((tmp_path / "s").rglob("*.tmp"))
        assert leftovers == []

    def test_corrupt_record_treated_as_miss(self, tmp_path):
        store_dir = tmp_path / "s"
        first = run_campaign(GRID, workers=1, store_dir=store_dir)
        store = CampaignStore(store_dir)
        victim = first.cells[2].cell
        path = store.result_path(store.key_for(victim))
        path.write_text('{"kind": "result", "result": {"trunca')
        assert store.get(victim) is None
        resumed = run_campaign(GRID, workers=1, store_dir=store_dir, resume=True)
        assert resumed.dispatched == 1
        assert _numbers(resumed) == _numbers(first)

    def test_report_sidecar(self, tmp_path):
        store_dir = tmp_path / "s"
        cell = GRID.cells()[0]
        run_campaign([cell], workers=1, store_dir=store_dir, keep_reports=True)
        store = CampaignStore(store_dir)
        with_report = store.get(cell, with_report=True)
        assert with_report is not None and with_report.report is not None
        assert with_report.report.summary.n_frames == with_report.n_frames
        without = store.get(cell)
        assert without is not None and without.report is None

    def test_reportless_record_is_a_miss_for_keep_reports(self, tmp_path):
        """Regression: a store written without reports must not satisfy
        a keep_reports=True resume with report=None cells — the cell is
        recomputed (and re-stored, this time with its report)."""
        store_dir = tmp_path / "s"
        cell = GRID.cells()[0]
        run_campaign([cell], workers=1, store_dir=store_dir)
        store = CampaignStore(store_dir)
        assert store.get(cell, with_report=True) is None
        upgraded = run_campaign(
            [cell], workers=1, store_dir=store_dir, keep_reports=True
        )
        assert upgraded.dispatched == 1
        assert upgraded.cells[0].report is not None
        # ...and the upgraded record now serves report-ful resumes.
        again = run_campaign(
            [cell], workers=1, store_dir=store_dir, keep_reports=True
        )
        assert again.dispatched == 0
        assert again.cells[0].report is not None

    def test_status_partition(self, tmp_path):
        store_dir = tmp_path / "s"
        subset = GRID.cells()[:2]
        run_campaign(subset, workers=1, store_dir=store_dir)
        store = CampaignStore(store_dir)
        status = store.status(GRID.cells())
        assert status.counts == {"done": 2, "pending": 2, "failed": 0}
        assert [c.name for c in status.done] == [c.name for c in subset]


class TestResume:
    def test_full_store_dispatches_zero_work(self, tmp_path):
        store_dir = tmp_path / "s"
        first = run_campaign(GRID, workers=1, store_dir=store_dir)
        assert first.dispatched == len(GRID) and first.store_hits == 0
        again = run_campaign(GRID, workers=1, store_dir=store_dir)
        # Zero simulation work on re-invocation: everything store-served.
        assert again.dispatched == 0
        assert again.store_hits == len(GRID)
        assert _numbers(again) == _numbers(first)
        # elapsed_s is persisted too, so even the wall column matches.
        assert [c.elapsed_s for c in again.cells] == [
            c.elapsed_s for c in first.cells
        ]

    def test_interrupted_campaign_resumes_bit_exact(self, tmp_path):
        """Kill-after-N-cells semantics: a store holding a prefix of the
        grid plus a resumed run equals an uninterrupted run, and only
        the missing cells are simulated."""
        uninterrupted = run_campaign(GRID, workers=1)
        store_dir = tmp_path / "s"
        # "Interrupted": only the first 3 of 4 cells completed.
        run_campaign(GRID.cells()[:3], workers=1, store_dir=store_dir)
        resumed = run_campaign(GRID, workers=1, store_dir=store_dir)
        assert resumed.dispatched == 1
        assert resumed.store_hits == 3
        assert _numbers(resumed) == _numbers(uninterrupted)
        summary_a = render_campaign(resumed)
        summary_b = render_campaign(uninterrupted)
        # Identical aggregation: every non-header line except the wall
        # column's jitter; compare the knee/curve sections exactly.
        tail_a = summary_a.split("\n\n", 2)[2]
        tail_b = summary_b.split("\n\n", 2)[2]
        assert tail_a == tail_b

    def test_resume_false_recomputes(self, tmp_path):
        store_dir = tmp_path / "s"
        run_campaign(GRID, workers=1, store_dir=store_dir)
        fresh = run_campaign(GRID, workers=1, store_dir=store_dir, resume=False)
        assert fresh.dispatched == len(GRID)
        assert fresh.store_hits == 0

    def test_deleted_cell_file_recomputed_alone(self, tmp_path):
        store_dir = tmp_path / "s"
        first = run_campaign(GRID, workers=1, store_dir=store_dir)
        store = CampaignStore(store_dir)
        victim = first.cells[1].cell
        assert store.discard(victim)
        resumed = run_campaign(GRID, workers=1, store_dir=store_dir)
        assert resumed.dispatched == 1
        assert resumed.store_hits == len(GRID) - 1
        assert _numbers(resumed) == _numbers(first)

    def test_parallel_resume_matches_serial(self, tmp_path):
        store_a = tmp_path / "a"
        store_b = tmp_path / "b"
        serial = run_campaign(GRID, workers=1, store_dir=store_a)
        parallel = run_campaign(GRID, workers=2, store_dir=store_b)
        assert _numbers(serial) == _numbers(parallel)
        # Cross-resume: a store written by the pool serves the serial run.
        resumed = run_campaign(GRID, workers=1, store_dir=store_b)
        assert resumed.dispatched == 0
        assert _numbers(resumed) == _numbers(serial)

    def test_salt_change_invalidates(self, tmp_path):
        store_dir = tmp_path / "s"
        cell = GRID.cells()[0]
        run_campaign([cell], workers=1, store_dir=store_dir)
        store = CampaignStore(store_dir, salt="different-code")
        assert store.get(cell) is None


class TestGridExtension:
    def test_extended_axis_runs_only_new_cells(self, tmp_path):
        store_dir = tmp_path / "s"
        first = run_campaign(GRID, workers=1, store_dir=store_dir)
        grown = GRID.extend(axes={"n_stations": [8]})
        assert len(grown) == len(GRID) + 2  # one new value x two seeds
        second = run_campaign(grown, workers=1, store_dir=store_dir)
        assert second.store_hits == len(GRID)
        assert second.dispatched == 2
        by_name = second.by_name()
        for cell in first.cells:  # original numbers served verbatim
            for field_name in NUMERIC_FIELDS:
                assert getattr(by_name[cell.name], field_name) == getattr(
                    cell, field_name
                )

    def test_extended_seeds_run_only_new_cells(self, tmp_path):
        store_dir = tmp_path / "s"
        run_campaign(GRID, workers=1, store_dir=store_dir)
        grown = GRID.extend(seeds=3)
        second = run_campaign(grown, workers=1, store_dir=store_dir)
        assert second.store_hits == len(GRID)
        assert second.dispatched == len(grown) - len(GRID)


class TestFailureRecords:
    #: GRID plus one cell whose config raises (n_stations must be >= 1).
    BAD_CELL = CampaignCell(
        "ramp", params=(("duration_s", 1.0), ("n_stations", -1)), seed=0
    )

    def test_failure_persisted_and_not_retried(self, tmp_path):
        store_dir = tmp_path / "s"
        cells = GRID.cells() + [self.BAD_CELL]
        first = run_campaign(cells, workers=1, store_dir=store_dir)
        assert len(first.cells) == len(GRID)
        assert [f.name for f in first.failed] == [self.BAD_CELL.name]
        assert first.failed[0].error_type == "ValueError"
        assert "ValueError" in first.failed[0].traceback
        again = run_campaign(cells, workers=1, store_dir=store_dir)
        assert again.dispatched == 0  # failure remembered, not retried
        assert len(again.failed) == 1

    def test_retry_failed_redispatches_only_failures(self, tmp_path):
        store_dir = tmp_path / "s"
        cells = GRID.cells() + [self.BAD_CELL]
        run_campaign(cells, workers=1, store_dir=store_dir)
        retried = run_campaign(
            cells, workers=1, store_dir=store_dir, retry_failed=True
        )
        assert retried.dispatched == 1
        assert retried.store_hits == len(GRID)
        assert len(retried.failed) == 1  # still fails, still recorded

    def test_success_clears_failure_record(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        cell = GRID.cells()[0]
        store.put_failure(
            FailedCell(cell, "RuntimeError", "boom", "tb", 0.1)
        )
        assert store.get_failure(cell) is not None
        result = run_campaign([cell], workers=1, store_dir=tmp_path / "s",
                              retry_failed=True)
        assert len(result.cells) == 1
        assert store.get_failure(cell) is None

    def test_dead_worker_does_not_poison_store(self, tmp_path):
        """Regression: a worker process dying breaks the whole pool and
        fails every queued future — those synthesized failures must not
        be persisted, or a plain --resume would report never-started
        cells as failed instead of re-running them."""
        from repro.sim import ScenarioBuilder, ScenarioConfig
        from repro.sim.library import SCENARIO_LIBRARY

        def _die_at_build(_index, _rng):
            import os as _os

            _os._exit(3)  # simulate an OOM-killed worker

        def _kamikaze(**params):
            # The factory itself must stay benign: the parent resolves
            # it for key hashing.  Only *building* the scenario — which
            # happens in the worker — invokes the activity hook and
            # kills the process.
            return ScenarioBuilder(
                ScenarioConfig(duration_s=0.5, activity=_die_at_build)
            )

        SCENARIO_LIBRARY["_kamikaze-store-test"] = _kamikaze
        try:
            cells = GRID.cells() + [CampaignCell("_kamikaze-store-test")]
            store_dir = tmp_path / "s"
            result = run_campaign(cells, workers=2, store_dir=store_dir)
            # The campaign completed; pool-death failures are visible...
            assert result.failed
            assert all("Broken" in f.error_type or f.traceback == ""
                       for f in result.failed)
            # ...but none were persisted as failure records.
            assert list(store_dir.glob("*/*.fail.json")) == []
            # A plain resume re-dispatches everything not actually done.
            stored = len(list(store_dir.glob("*/*.json")))  # sharded records
            resumed = run_campaign(
                GRID.cells(), workers=1, store_dir=store_dir
            )
            assert resumed.dispatched == len(GRID) - stored
            assert len(resumed.cells) == len(GRID)
            assert resumed.failed == []
        finally:
            SCENARIO_LIBRARY.pop("_kamikaze-store-test", None)

    def test_failure_record_contents(self, tmp_path):
        store_dir = tmp_path / "s"
        run_campaign([self.BAD_CELL], workers=1, store_dir=store_dir)
        store = CampaignStore(store_dir)
        payload = json.loads(
            store.failure_path(store.key_for(self.BAD_CELL)).read_text()
        )
        assert payload["kind"] == "failure"
        assert payload["cell"]["name"] == self.BAD_CELL.name
        assert payload["error"]["type"] == "ValueError"
        assert "Traceback" in payload["error"]["traceback"]


class TestQuarantine:
    """Corrupt records are renamed, counted and surfaced — never trusted
    or silently destroyed."""

    def test_corrupt_record_quarantined_with_evidence(self, tmp_path):
        store_dir = tmp_path / "s"
        cell = GRID.cells()[0]
        first = run_campaign([cell], workers=1, store_dir=store_dir)
        store = CampaignStore(store_dir)
        path = store.result_path(store.key_for(cell))
        path.write_text('{"kind": "result", "trunca')
        resumed = run_campaign([cell], workers=1, store_dir=store_dir)
        assert resumed.quarantined == 1
        assert resumed.dispatched == 1
        assert _numbers(resumed) == _numbers(first)
        corpse = path.with_name(path.name + ".corrupt")
        assert corpse.exists()
        assert corpse.read_text().startswith('{"kind"')  # evidence kept

    def test_quarantine_count_surfaces_in_summary_header(self, tmp_path):
        store_dir = tmp_path / "s"
        cell = GRID.cells()[0]
        run_campaign([cell], workers=1, store_dir=store_dir)
        store = CampaignStore(store_dir)
        store.result_path(store.key_for(cell)).write_text("garbage")
        result = run_campaign([cell], workers=1, store_dir=store_dir)
        header = render_campaign(result).splitlines()[0]
        assert "1 corrupt record(s) quarantined" in header
        clean = run_campaign([cell], workers=1, store_dir=store_dir)
        assert clean.quarantined == 0
        assert "quarantined" not in render_campaign(clean).splitlines()[0]

    def test_campaign_status_reports_quarantined(self, tmp_path, capsys):
        from repro.tools import main

        store_dir = tmp_path / "s"
        cell = GRID.cells()[0]
        run_campaign([cell], workers=1, store_dir=store_dir)
        store = CampaignStore(store_dir)
        store.result_path(store.key_for(cell)).write_text("garbage")
        assert main(["campaign-status", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "1 corrupt record(s) quarantined" in out

    def test_records_walk_quarantines_instead_of_skipping(self, tmp_path):
        store_dir = tmp_path / "s"
        run_campaign(GRID.cells()[:2], workers=1, store_dir=store_dir)
        store = CampaignStore(store_dir)
        victim = store.result_path(store.key_for(GRID.cells()[0]))
        victim.write_text("\x00\x01 not json")
        records = list(store.records())
        assert len(records) == 1
        assert store.quarantined == 1
        assert victim.with_name(victim.name + ".corrupt").exists()

    def test_status_never_counts_unreadable_work_as_done(self, tmp_path):
        store_dir = tmp_path / "s"
        cells = GRID.cells()[:2]
        run_campaign(cells, workers=1, store_dir=store_dir)
        store = CampaignStore(store_dir)
        store.result_path(store.key_for(cells[0])).write_text("junk")
        status = store.status(cells)
        assert status.counts == {"done": 1, "pending": 1, "failed": 0}
        assert store.quarantined == 1
