"""Deterministic tests for the distributed-campaign dispatch protocol.

Everything timing-dependent runs against :class:`CoordinatorState` with
an injected fake clock — lease expiry, stalled heartbeats and retry
backoff are driven by advancing a number, never by sleeping.  Socket
tests speak the real wire protocol through in-test fake workers that
fabricate cell records instead of simulating, so the whole file runs in
well under a second.
"""

import dataclasses
import json
import socket

import numpy as np
import pytest

from repro.campaign import CampaignCell, run_campaign
from repro.campaign.dispatch import (
    DISPATCH_MAGIC,
    Coordinator,
    CoordinatorState,
    DispatchError,
    cell_from_wire,
    cell_to_wire,
    recv_message,
    send_message,
)
from repro.campaign.merge import (
    MergeConflictError,
    merge_shard,
    merge_shards,
    shard_roots,
)
from repro.campaign.runner import CellResult
from repro.campaign.store import CampaignStore, FailedCell
from repro.framing import FrameError

SALT = "dispatch-test"


def make_cells(n=4):
    """Distinct cheap-to-key cells (no store record exists for them)."""
    return [
        CampaignCell("ramp", params=(("n_stations", 2 + i),), seed=0)
        for i in range(n)
    ]


def fake_result(cell, elapsed_s=0.25):
    """A fabricated CellResult: dispatch tests never simulate."""
    return CellResult(
        cell=cell,
        n_frames=100,
        frames_transmitted=120,
        offered_packets=90,
        duration_s=10.0,
        delivery_ratio=0.9,
        capture_ratio=100 / 120,
        mode_utilization=55.0,
        peak_throughput_mbps=3.1,
        peak_throughput_utilization=80.0,
        high_congestion_fraction=0.2,
        unrecorded_percent=1.5,
        elapsed_s=elapsed_s,
    )


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "store", salt=SALT)


def make_state(store, cells, clock, **kwargs):
    kwargs.setdefault("lease_s", 10.0)
    kwargs.setdefault("batch", 2)
    kwargs.setdefault("backoff_s", 0.5)
    return CoordinatorState(cells, store, clock=clock, **kwargs)


def complete_cell(state, store, lease_id, entry, worker="w"):
    cell = cell_from_wire(entry["cell"])
    record = store.result_payload(fake_result(cell), entry["key"])
    return state.complete(worker, lease_id, entry["index"], entry["key"], record)


class TestWire:
    def test_cell_roundtrip(self):
        cell = CampaignCell(
            "ramp", params=(("n_stations", 8), ("duration_s", 2.5)), seed=3
        )
        assert cell_from_wire(cell_to_wire(cell)) == cell

    def test_fidelity_survives_the_wire(self):
        cell = CampaignCell("ramp", params=(), seed=0, fidelity="fast")
        wired = cell_from_wire(cell_to_wire(cell))
        assert wired.fidelity == "fast"
        assert wired == cell

    def test_numpy_scalars_coerced(self):
        cell = CampaignCell(
            "ramp", params=(("n_stations", np.int64(4)),), seed=0
        )
        wire = cell_to_wire(cell)
        assert json.dumps(wire)  # JSON-safe
        assert cell_from_wire(wire).kwargs["n_stations"] == 4

    def test_non_scalar_parameter_refused(self):
        cell = CampaignCell(
            "ramp", params=(("schedule", object()),), seed=0
        )
        with pytest.raises(DispatchError, match="not a JSON scalar"):
            cell_to_wire(cell)

    def test_message_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"op": "hello", "worker": "w1"})
            assert recv_message(b) == {"op": "hello", "worker": "w1"}
            a.close()
            assert recv_message(b) is None  # clean EOF
        finally:
            b.close()

    def test_message_without_op_rejected(self):
        a, b = socket.socketpair()
        try:
            from repro.framing import send_frame

            send_frame(a, json.dumps({"not_op": 1}).encode(), DISPATCH_MAGIC)
            with pytest.raises(FrameError, match="without an op"):
                recv_message(b)
        finally:
            a.close()
            b.close()


class TestCoordinatorState:
    def test_grants_batches_until_exhausted_then_wait(self, store):
        clock = FakeClock()
        state = make_state(store, make_cells(3), clock)
        first = state.lease("w1")
        assert first["op"] == "grant"
        assert [e["index"] for e in first["cells"]] == [0, 1]
        second = state.lease("w2")
        assert [e["index"] for e in second["cells"]] == [2]
        third = state.lease("w3")
        assert third["op"] == "wait"
        assert 0.05 <= third["seconds"] <= 2.0

    def test_heartbeat_extends_lease_past_original_deadline(self, store):
        clock = FakeClock()
        state = make_state(store, make_cells(2), clock)
        grant = state.lease("w1")
        clock.advance(8.0)
        assert state.heartbeat("w1", grant["lease"])["op"] == "ok"
        clock.advance(8.0)  # 16s since grant, 8s since heartbeat
        assert state.reclaim() == 0
        assert grant["lease"] in state.leases

    def test_expired_lease_is_reclaimed_and_cells_rerun(self, store):
        clock = FakeClock()
        state = make_state(store, make_cells(2), clock)
        grant = state.lease("w1")
        clock.advance(10.1)
        assert state.reclaim() == 1
        assert state.heartbeat("w1", grant["lease"])["op"] == "gone"
        regrant = state.lease("w2")
        assert [e["index"] for e in regrant["cells"]] == [0, 1]
        assert all(e["attempt"] == 2 for e in regrant["cells"])

    def test_connection_death_reclaims_immediately(self, store):
        clock = FakeClock()
        state = make_state(store, make_cells(2), clock)
        state.lease("w1")
        assert state.drop_worker("w1") == 1
        # No clock advance needed: the cells are dispatchable right now.
        assert state.lease("w2")["op"] == "grant"

    def test_duplicate_completion_is_absorbed(self, store):
        clock = FakeClock()
        state = make_state(store, make_cells(2), clock)
        grant = state.lease("w1")
        entry = grant["cells"][0]
        first = complete_cell(state, store, grant["lease"], entry)
        assert first == {"op": "ok", "lease_valid": True}
        again = complete_cell(state, store, grant["lease"], entry)
        assert again["duplicate"] is True
        assert len(state.done) == 1

    def test_stale_lease_completion_still_counts(self, store):
        """Work finished after the lease was reclaimed is never wasted."""
        clock = FakeClock()
        state = make_state(store, make_cells(2), clock)
        grant = state.lease("w1")
        clock.advance(10.1)
        state.reclaim()
        entry = grant["cells"][0]
        ack = complete_cell(state, store, grant["lease"], entry)
        assert ack["op"] == "ok" and ack["lease_valid"] is False
        # The completed cell must not be granted to anyone else.
        regrant = state.lease("w2")
        assert entry["index"] not in [e["index"] for e in regrant["cells"]]
        assert state.done[entry["index"]] == entry["key"]

    def test_failed_cell_backs_off_then_retries(self, store):
        clock = FakeClock()
        state = make_state(store, make_cells(1), clock, batch=1)
        grant = state.lease("w1")
        entry = grant["cells"][0]
        failure = store.failure_payload(
            FailedCell(
                cell=make_cells(1)[0],
                error_type="RuntimeError",
                error="boom",
                traceback="tb",
                elapsed_s=0.1,
            ),
            entry["key"],
        )
        ack = state.fail("w1", grant["lease"], entry["index"], entry["key"], failure)
        assert ack == {"op": "ok", "final": False, "retry_in_s": 0.5}
        waiting = state.lease("w1")
        assert waiting["op"] == "wait"
        assert waiting["seconds"] <= 0.5
        clock.advance(0.51)
        retry = state.lease("w1")
        assert retry["op"] == "grant"
        assert retry["cells"][0]["attempt"] == 2
        # Mid-budget failures are NOT persisted: a coordinator restart
        # resets the retry count instead of inheriting half-spent budgets.
        assert not store.failure_path(entry["key"]).exists()

    def test_retry_budget_exhaustion_records_permanent_failure(self, store):
        clock = FakeClock()
        cells = make_cells(1)
        state = make_state(store, cells, clock, batch=1, max_attempts=2)
        failure = FailedCell(
            cell=cells[0], error_type="RuntimeError", error="boom",
            traceback="tb", elapsed_s=0.1,
        )
        for attempt in (1, 2):
            clock.advance(1.0)
            grant = state.lease("w1")
            assert grant["cells"][0]["attempt"] == attempt
            entry = grant["cells"][0]
            ack = state.fail(
                "w1", grant["lease"], entry["index"], entry["key"],
                store.failure_payload(failure, entry["key"]),
            )
        assert ack == {"op": "ok", "final": True}
        assert state.is_done
        assert state.lease("w1") == {"op": "done"}
        stored = store.get_failure(cells[0], key=entry["key"])
        assert stored is not None and stored.error_type == "RuntimeError"

    def test_repeatedly_fatal_cell_becomes_lease_expired_failure(self, store):
        """A cell that keeps killing its workers cannot starve the run."""
        clock = FakeClock()
        cells = make_cells(1)
        state = make_state(store, cells, clock, batch=1, max_attempts=3)
        for _ in range(3):
            grant = state.lease("w1")
            assert grant["op"] == "grant"
            state.drop_worker("w1")  # worker dies holding the lease
        assert state.is_done
        failure = state.failed[0]
        assert failure.error_type == "LeaseExpired"
        assert "retry budget" in failure.error
        assert store.get_failure(cells[0]) is not None

    def test_resume_preloads_store_results_and_failures(self, store):
        cells = make_cells(3)
        store.put(fake_result(cells[0]))
        store.put_failure(
            FailedCell(
                cell=cells[1], error_type="RuntimeError", error="old",
                traceback="", elapsed_s=0.1,
            )
        )
        state = make_state(store, cells, FakeClock())
        assert state.store_hits == 1
        assert 0 in state.done and 1 in state.failed
        grant = state.lease("w1")
        assert [e["index"] for e in grant["cells"]] == [2]

    def test_retry_failed_redispatches_recorded_failures(self, store):
        cells = make_cells(2)
        store.put_failure(
            FailedCell(
                cell=cells[0], error_type="RuntimeError", error="old",
                traceback="", elapsed_s=0.1,
            )
        )
        state = make_state(store, cells, FakeClock(), retry_failed=True)
        grant = state.lease("w1")
        assert [e["index"] for e in grant["cells"]] == [0, 1]
        complete_cell(state, store, grant["lease"], grant["cells"][0])
        # Success erased the stale failure record.
        assert store.get_failure(cells[0]) is None
        assert store.get(cells[0]) is not None

    def test_corrupt_preload_record_recomputes_and_counts(self, store):
        cells = make_cells(1)
        path = store.put(fake_result(cells[0]))
        path.write_text("{ torn")
        state = make_state(store, cells, FakeClock())
        assert state.store_hits == 0
        assert store.quarantined == 1
        assert path.with_name(path.name + ".corrupt").exists()
        assert state.lease("w1")["op"] == "grant"

    def test_snapshot_shape(self, store):
        clock = FakeClock()
        state = make_state(store, make_cells(3), clock)
        grant = state.lease("w1")
        complete_cell(state, store, grant["lease"], grant["cells"][0])
        snap = state.snapshot()
        assert snap["cells"] == 3 and snap["done"] == 1
        assert snap["leased"] == 1 and snap["ready"] == 1
        assert snap["workers"]["w"]["completed"] == 1
        assert snap["phase"] == "running"


class TestMerge:
    def test_union_copies_missing_records(self, store, tmp_path):
        cells = make_cells(3)
        shard = CampaignStore(tmp_path / "shard", salt=SALT)
        shard.put(fake_result(cells[0]))
        shard.put_failure(
            FailedCell(
                cell=cells[1], error_type="RuntimeError", error="x",
                traceback="", elapsed_s=0.1,
            )
        )
        report = merge_shard(store, shard.root)
        assert report.results_merged == 1 and report.failures_merged == 1
        assert store.get(cells[0]) is not None
        assert store.get_failure(cells[1]) is not None

    def test_identical_records_differing_only_in_elapsed_merge(
        self, store, tmp_path
    ):
        cells = make_cells(1)
        shard = CampaignStore(tmp_path / "shard", salt=SALT)
        store.put(fake_result(cells[0], elapsed_s=0.1))
        shard.put(fake_result(cells[0], elapsed_s=9.9))
        report = merge_shard(store, shard.root)
        assert report.results_identical == 1
        assert report.results_merged == 0

    def test_conflicting_records_raise(self, store, tmp_path):
        cells = make_cells(1)
        shard = CampaignStore(tmp_path / "shard", salt=SALT)
        store.put(fake_result(cells[0]))
        different = dataclasses.replace(fake_result(cells[0]), n_frames=999)
        shard.put(different, key=shard.key_for(cells[0]))
        with pytest.raises(MergeConflictError, match="disagree"):
            merge_shard(store, shard.root)

    def test_corrupt_shard_record_quarantined_not_trusted(
        self, store, tmp_path
    ):
        cells = make_cells(1)
        shard = CampaignStore(tmp_path / "shard", salt=SALT)
        path = shard.put(fake_result(cells[0]))
        path.write_text("not json at all")
        report = merge_shard(store, shard.root)
        assert report.quarantined == 1
        assert path.with_name(path.name + ".corrupt").exists()
        assert store.get(cells[0]) is None

    def test_failure_never_overrides_result(self, store, tmp_path):
        cells = make_cells(1)
        shard = CampaignStore(tmp_path / "shard", salt=SALT)
        store.put(fake_result(cells[0]))
        shard.put_failure(
            FailedCell(
                cell=cells[0], error_type="RuntimeError", error="late",
                traceback="", elapsed_s=0.1,
            )
        )
        report = merge_shard(store, shard.root)
        assert report.failures_skipped == 1
        assert store.get_failure(cells[0]) is None

    def test_shard_roots_lists_worker_dirs(self, tmp_path, store):
        shards = tmp_path / "store" / "shards"
        (shards / "w-b").mkdir(parents=True)
        (shards / "w-a").mkdir()
        (shards / "stray.txt").write_text("not a dir")
        roots = shard_roots(tmp_path / "store")
        assert [p.name for p in roots] == ["w-a", "w-b"]
        assert shard_roots(tmp_path / "nonexistent") == []

    def test_merge_shards_accumulates(self, store, tmp_path):
        cells = make_cells(2)
        for i, cell in enumerate(cells):
            shard = CampaignStore(tmp_path / f"shard{i}", salt=SALT)
            shard.put(fake_result(cell))
        report = merge_shards(
            store, [tmp_path / "shard0", tmp_path / "shard1"]
        )
        assert report.results_merged == 2
        assert len(report.shards) == 2


class ProtocolWorker:
    """In-test fake worker speaking the real wire protocol.

    Fabricates cell records instead of simulating, so socket-level
    coordinator behaviour (granting, completion durability, reclaim on
    disconnect) is tested in milliseconds.
    """

    def __init__(self, coordinator, name="fake"):
        host, port = coordinator.address
        self.sock = socket.create_connection((host, port))
        self.welcome = self.request({"op": "hello", "worker": name})
        assert self.welcome["op"] == "welcome"
        self.shard = CampaignStore(
            self.welcome["shard"], salt=self.welcome["salt"]
        )

    def request(self, message):
        send_message(self.sock, message)
        reply = recv_message(self.sock)
        assert reply is not None
        return reply

    def lease(self):
        return self.request(
            {"op": "lease", "worker": self.welcome["worker"]}
        )

    def complete_entry(self, lease, entry):
        cell = cell_from_wire(entry["cell"])
        result = fake_result(cell)
        self.shard.put(result, key=entry["key"])
        return self.request(
            {
                "op": "complete",
                "worker": self.welcome["worker"],
                "lease": lease,
                "index": entry["index"],
                "key": entry["key"],
                "record": self.shard.result_payload(result, entry["key"]),
            }
        )

    def drain(self):
        """Lease and fabricate until the coordinator says done."""
        completed = 0
        while True:
            reply = self.lease()
            if reply["op"] == "done":
                return completed
            assert reply["op"] == "grant", reply
            for entry in reply["cells"]:
                self.complete_entry(reply["lease"], entry)
                completed += 1

    def kill(self):
        """Vanish abruptly (simulated SIGKILL: the socket just dies)."""
        self.sock.close()

    def close(self):
        try:
            send_message(self.sock, {"op": "bye"})
        except OSError:
            pass
        self.sock.close()


class TestCoordinatorServer:
    def test_welcome_assigns_shard_and_salt(self, tmp_path):
        with Coordinator(
            make_cells(2), tmp_path / "store", salt=SALT
        ) as coordinator:
            worker = ProtocolWorker(coordinator)
            try:
                assert worker.welcome["salt"] == SALT
                assert str(tmp_path / "store" / "shards") in worker.welcome["shard"]
                assert worker.welcome["options"]["keep_reports"] is False
            finally:
                worker.close()

    def test_protocol_worker_drains_campaign(self, tmp_path):
        cells = make_cells(4)
        with Coordinator(
            cells, tmp_path / "store", salt=SALT, batch=3
        ) as coordinator:
            worker = ProtocolWorker(coordinator)
            try:
                assert worker.drain() == 4
            finally:
                worker.close()
            assert coordinator.wait(timeout=5.0)
            result = coordinator.result()
        assert [r.cell for r in result.cells] == cells
        assert result.dispatched == 4 and not result.failed
        assert result.store_dir == str(tmp_path / "store")

    def test_fully_stored_campaign_needs_no_workers(self, tmp_path):
        cells = make_cells(2)
        seed_store = CampaignStore(tmp_path / "store", salt=SALT)
        for cell in cells:
            seed_store.put(fake_result(cell))
        with Coordinator(cells, tmp_path / "store", salt=SALT) as coordinator:
            assert coordinator.finished
            result = coordinator.result()
        assert result.store_hits == 2 and result.dispatched == 0

    def test_unknown_op_reported_not_fatal(self, tmp_path):
        # send_frame directly: send_message refuses undeclared ops at
        # the sender, but an arbitrary client can still put one on the
        # wire — the server must reply with an error, not die.
        from repro.framing import send_frame

        with Coordinator(
            make_cells(1), tmp_path / "store", salt=SALT
        ) as coordinator:
            worker = ProtocolWorker(coordinator)
            try:
                payload = json.dumps({"op": "frobnicate"}).encode()
                send_frame(worker.sock, payload, DISPATCH_MAGIC)
                reply = recv_message(worker.sock)
                assert reply["op"] == "error"
                assert worker.lease()["op"] == "grant"  # connection survives
            finally:
                worker.close()

    def test_worker_connect_times_out_fast(self):
        """An unreachable coordinator fails the connect within the
        timeout instead of hanging (the satellite bug: bare
        create_connection blocks for the kernel's minutes-long
        default)."""
        import time

        from repro.campaign.worker import run_worker

        # RFC 5737 TEST-NET-1: guaranteed non-routable, so the connect
        # either times out or is refused immediately — never answered.
        start = time.perf_counter()
        with pytest.raises(OSError):
            run_worker("192.0.2.1", 9, connect_timeout_s=0.3)
        assert time.perf_counter() - start < 5.0

    def test_send_message_refuses_undeclared_op(self, tmp_path):
        with Coordinator(
            make_cells(1), tmp_path / "store", salt=SALT
        ) as coordinator:
            worker = ProtocolWorker(coordinator)
            try:
                with pytest.raises(DispatchError, match="did you mean 'heartbeat'"):
                    send_message(worker.sock, {"op": "heartbeet"})
                with pytest.raises(DispatchError, match="unknown dispatch op"):
                    send_message(worker.sock, {"no": "op"})
            finally:
                worker.close()


class TestRunCampaignRouting:
    def test_unknown_dispatch_mode_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'distributed'"):
            run_campaign(make_cells(1), dispatch="distributd")

    def test_distributed_refuses_keep_reports(self):
        with pytest.raises(ValueError, match="keep_reports"):
            run_campaign(
                make_cells(1), dispatch="distributed", keep_reports=True
            )
