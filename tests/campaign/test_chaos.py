"""Fault-injection tests: every failure mode ends in a complete result.

The dispatch contract under chaos — SIGKILLed workers (simulated as the
socket dying, which is all the coordinator can ever observe), stalled
heartbeats, dropped connections, duplicate completions, coordinator
restarts, hung cells and broken process pools — is that the campaign
still completes with zero lost cells, no completed cell recomputed, and
results identical to a serial run modulo per-cell wall-clock.

No test here synchronises by sleeping: timing-sensitive behaviour runs
on the fake-clock state machine, and socket-level tests wait on events
(or spin on coordinator state with a hard deadline) that resolve the
instant the server thread observes the fault.
"""

import dataclasses
import os
import signal
import time

import pytest

from repro.campaign import CampaignCell, ParameterGrid, run_campaign
from repro.campaign.dispatch import Coordinator, CoordinatorState
from repro.campaign.store import CampaignStore, FailedCell
from repro.sim.library import SCENARIO_LIBRARY

from .test_dispatch import (
    SALT,
    FakeClock,
    ProtocolWorker,
    fake_result,
    make_cells,
    make_state,
)


def wait_until(predicate, timeout=10.0):
    """Spin (no sleeping) until ``predicate`` holds; hard deadline."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
    return False


def normalized(results):
    """Cell results with the volatile wall-clock field zeroed."""
    return [dataclasses.replace(r, elapsed_s=0.0) for r in results]


class TestWorkerDeath:
    def test_sigkilled_worker_forfeits_batch_immediately(self, tmp_path):
        """A dead worker's unfinished cells move on without waiting out
        the lease deadline, and its finished cell is never recomputed."""
        cells = make_cells(4)
        with Coordinator(
            cells, tmp_path / "store", salt=SALT, batch=2, lease_s=3600.0
        ) as coordinator:
            victim = ProtocolWorker(coordinator, name="victim")
            grant = victim.lease()
            assert len(grant["cells"]) == 2
            victim.complete_entry(grant["lease"], grant["cells"][0])
            survivor_index = grant["cells"][1]["index"]
            victim.kill()  # SIGKILL as the coordinator sees it: dead socket

            # The lease_s is an hour: only the connection-death path can
            # free the second cell.  No worker owns anything afterwards.
            assert wait_until(lambda: not coordinator.state.leases)

            rescuer = ProtocolWorker(coordinator, name="rescuer")
            try:
                assert rescuer.drain() == 3  # 4 cells - 1 completed by victim
            finally:
                rescuer.close()
            assert coordinator.wait(timeout=10.0)
            result = coordinator.result()

        assert len(result.cells) == 4 and not result.failed
        state = coordinator.state
        # Recomputation is bounded by the dead worker's lease batch:
        # only the cell it held unfinished was attempted twice.
        retried = [i for i, n in enumerate(state.attempts) if n > 0]
        assert retried == [survivor_index]
        assert state.reclaims == 1

    def test_connection_drop_midbatch_loses_nothing(self, tmp_path):
        """Both workers die; a third finishes everything."""
        cells = make_cells(6)
        with Coordinator(
            cells, tmp_path / "store", salt=SALT, batch=2, lease_s=3600.0
        ) as coordinator:
            for name in ("w1", "w2"):
                worker = ProtocolWorker(coordinator, name=name)
                worker.lease()
                worker.kill()
            assert wait_until(lambda: not coordinator.state.leases)
            closer = ProtocolWorker(coordinator, name="closer")
            try:
                assert closer.drain() == 6
            finally:
                closer.close()
            assert coordinator.wait(timeout=10.0)
            result = coordinator.result()
        assert len(result.cells) == 6 and not result.failed

    def test_repeated_deaths_exhaust_retry_budget(self, tmp_path):
        """A cell that kills every worker becomes a recorded failure,
        not an infinite loop."""
        cells = make_cells(1)
        with Coordinator(
            cells,
            tmp_path / "store",
            salt=SALT,
            batch=1,
            lease_s=3600.0,
            max_attempts=2,
        ) as coordinator:
            for attempt in range(2):
                worker = ProtocolWorker(coordinator, name=f"doomed{attempt}")
                assert worker.lease()["op"] == "grant"
                worker.kill()
                assert wait_until(lambda: not coordinator.state.leases)
            assert coordinator.wait(timeout=10.0)
            result = coordinator.result()
        assert not result.cells
        assert len(result.failed) == 1
        assert result.failed[0].error_type == "LeaseExpired"


class TestStalledHeartbeat:
    """Deadline behaviour on the fake clock: stalls without any stalling."""

    def test_stalled_worker_is_reclaimed_and_late_result_absorbed(
        self, tmp_path
    ):
        store = CampaignStore(tmp_path / "store", salt=SALT)
        clock = FakeClock()
        cells = make_cells(2)
        state = make_state(store, cells, clock, batch=2, lease_s=5.0)
        stalled = state.lease("stalled")
        # Heartbeats arrive for a while, then stop (the worker wedged).
        clock.advance(4.0)
        assert state.heartbeat("stalled", stalled["lease"])["op"] == "ok"
        clock.advance(5.1)  # past the extended deadline, no heartbeat
        assert state.reclaim() == 1

        fresh = state.lease("fresh")
        assert [e["index"] for e in fresh["cells"]] == [0, 1]
        for entry in fresh["cells"]:
            record = store.result_payload(
                fake_result(cells[entry["index"]]), entry["key"]
            )
            state.complete(
                "fresh", fresh["lease"], entry["index"], entry["key"], record
            )
        assert state.is_done

        # The stalled worker wakes up and reports its (now duplicate)
        # result: absorbed, acknowledged, nothing recomputed or rewritten.
        entry = stalled["cells"][0]
        late = store.result_payload(
            fake_result(cells[entry["index"]], elapsed_s=99.0), entry["key"]
        )
        ack = state.complete(
            "stalled", stalled["lease"], entry["index"], entry["key"], late
        )
        assert ack["duplicate"] is True
        stored = store.get(cells[entry["index"]])
        assert stored is not None and stored.elapsed_s != 99.0  # first write won

    def test_duplicate_completion_from_two_workers_first_wins(self, tmp_path):
        store = CampaignStore(tmp_path / "store", salt=SALT)
        clock = FakeClock()
        cells = make_cells(1)
        state = make_state(store, cells, clock, batch=1, lease_s=5.0)
        first = state.lease("w1")
        clock.advance(5.1)
        state.reclaim()
        second = state.lease("w2")
        entry = second["cells"][0]
        record_w2 = store.result_payload(
            fake_result(cells[0], elapsed_s=1.0), entry["key"]
        )
        assert state.complete(
            "w2", second["lease"], entry["index"], entry["key"], record_w2
        )["op"] == "ok"
        record_w1 = store.result_payload(
            fake_result(cells[0], elapsed_s=2.0), entry["key"]
        )
        ack = state.complete(
            "w1", first["lease"], entry["index"], entry["key"], record_w1
        )
        assert ack["duplicate"] is True
        assert store.get(cells[0]).elapsed_s == 1.0


class TestCoordinatorRestart:
    def test_restart_resumes_from_store_without_recompute(self, tmp_path):
        cells = make_cells(4)
        with Coordinator(
            cells, tmp_path / "store", salt=SALT, batch=2
        ) as first:
            worker = ProtocolWorker(first, name="w")
            grant = worker.lease()
            for entry in grant["cells"]:
                worker.complete_entry(grant["lease"], entry)
            worker.close()
            # Coordinator dies here with 2 of 4 cells done.

        with Coordinator(
            cells, tmp_path / "store", salt=SALT, batch=2
        ) as second:
            assert second.state.store_hits == 2
            worker = ProtocolWorker(second, name="w2")
            try:
                assert worker.drain() == 2  # only the unfinished half
            finally:
                worker.close()
            assert second.wait(timeout=10.0)
            result = second.result()
        assert len(result.cells) == 4
        assert result.store_hits == 2 and result.dispatched == 2

    def test_shard_record_orphaned_by_crash_is_recovered(self, tmp_path):
        """A worker wrote its shard but its completion report never
        arrived: the restarted coordinator merges the shard and answers
        the cell from the store instead of recomputing it."""
        cells = make_cells(2)
        shard = CampaignStore(
            tmp_path / "store" / "shards" / "w-crashed", salt=SALT
        )
        shard.put(fake_result(cells[0]))

        with Coordinator(
            cells, tmp_path / "store", salt=SALT
        ) as coordinator:
            assert coordinator.recovery.results_merged == 1
            assert coordinator.state.store_hits == 1
            worker = ProtocolWorker(coordinator, name="w")
            try:
                assert worker.drain() == 1
            finally:
                worker.close()
            assert coordinator.wait(timeout=10.0)
            result = coordinator.result()
        assert len(result.cells) == 2 and result.dispatched == 1

    def test_restart_resets_mid_budget_retry_counts(self, tmp_path):
        """Attempts live in coordinator memory, permanent failures in
        the store: a restart forgives half-spent retry budgets."""
        store = CampaignStore(tmp_path / "store", salt=SALT)
        cells = make_cells(1)
        clock = FakeClock()
        state = make_state(store, cells, clock, batch=1, max_attempts=3)
        grant = state.lease("w1")
        entry = grant["cells"][0]
        failure = store.failure_payload(
            FailedCell(
                cell=cells[0], error_type="RuntimeError", error="flaky",
                traceback="", elapsed_s=0.1,
            ),
            entry["key"],
        )
        state.fail("w1", grant["lease"], entry["index"], entry["key"], failure)
        assert state.attempts[0] == 1
        # "Restart": a fresh state over the same store.
        reborn = make_state(store, cells, FakeClock(), batch=1, max_attempts=3)
        assert reborn.attempts[0] == 0
        assert reborn.lease("w")["cells"][0]["attempt"] == 1


#: A grid whose cells simulate effectively forever (hours of simulated
#: time): the only way these campaigns finish is the timeout machinery.
HUNG_CELL = CampaignCell(
    "ramp",
    params=(("n_stations", 2), ("duration_s", 100000.0)),
    seed=0,
)


class TestCellTimeout:
    def test_serial_hung_cell_becomes_timeout_failure(self):
        result = run_campaign([HUNG_CELL], workers=1, timeout_s=0.15)
        assert not result.cells
        assert len(result.failed) == 1
        failure = result.failed[0]
        assert failure.error_type == "Timeout"
        assert "timeout_s=0.15" in failure.error
        assert failure.elapsed_s < 10.0

    @pytest.mark.skipif(
        __import__("multiprocessing").get_start_method() != "fork",
        reason="pool timeout test needs fork workers",
    )
    def test_pool_hung_cells_time_out_in_their_workers(self):
        hung = [
            dataclasses.replace(HUNG_CELL, seed=seed) for seed in (0, 1)
        ]
        result = run_campaign(hung, workers=2, timeout_s=0.15)
        assert not result.cells
        assert {f.error_type for f in result.failed} == {"Timeout"}
        assert len(result.failed) == 2

    def test_timeout_rides_the_dispatch_protocol(self, tmp_path):
        """Distributed: the coordinator ships timeout_s to workers and a
        hung leased cell fails as Timeout after its retry budget."""
        from repro.campaign.worker import run_worker

        with Coordinator(
            [HUNG_CELL],
            tmp_path / "store",
            batch=1,
            max_attempts=1,
            timeout_s=0.15,
        ) as coordinator:
            host, port = coordinator.address
            # In-process worker on the test's main thread: SIGALRM-able,
            # and the whole protocol round-trip stays deterministic.
            completed = run_worker(host, port, worker_id="inline")
            assert completed == 1
            assert coordinator.wait(timeout=10.0)
            result = coordinator.result()
        assert not result.cells
        assert len(result.failed) == 1
        assert result.failed[0].error_type == "Timeout"

    def test_fast_cells_unaffected_by_generous_timeout(self):
        cell = CampaignCell("ramp", params=(("duration_s", 1.0),), seed=0)
        bounded = run_campaign([cell], workers=1, timeout_s=600.0)
        unbounded = run_campaign([cell], workers=1)
        assert normalized(bounded.cells) == normalized(unbounded.cells)
        assert not bounded.failed


def _kill_scenario_factory(**params):
    """A scenario whose build SIGKILLs its own process — from the pool's
    perspective, indistinguishable from the OOM killer."""
    os.kill(os.getpid(), signal.SIGKILL)


class TestBrokenPool:
    @pytest.fixture
    def kill_scenario(self):
        SCENARIO_LIBRARY["chaos-kill"] = _kill_scenario_factory
        try:
            yield "chaos-kill"
        finally:
            del SCENARIO_LIBRARY["chaos-kill"]

    @pytest.mark.skipif(
        __import__("multiprocessing").get_start_method() != "fork",
        reason="test-registered scenarios reach pool workers via fork",
    )
    def test_pool_worker_sigkill_synthesizes_failed_cells(self, kill_scenario):
        """BrokenProcessPool mid-campaign: the campaign still completes,
        every cell is accounted for, and nothing hangs."""
        cells = [
            CampaignCell(kill_scenario, params=(), seed=seed)
            for seed in (0, 1)
        ]
        result = run_campaign(cells, workers=2)
        assert result.n_total == 2
        assert not result.cells
        assert len(result.failed) == 2
        assert {f.error_type for f in result.failed} == {"BrokenProcessPool"}


class TestDistributedEndToEnd:
    """One real-subprocess run: the only test here that spawns actual
    ``repro campaign-worker`` processes."""

    def test_distributed_equals_serial(self, tmp_path):
        grid = ParameterGrid(
            "ramp",
            axes={"n_stations": [2, 4]},
            fixed={"duration_s": 1.0},
        )
        serial = run_campaign(grid, workers=1)
        distributed = run_campaign(
            grid,
            workers=2,
            dispatch="distributed",
            store_dir=tmp_path / "store",
        )
        assert not distributed.failed
        assert normalized(distributed.cells) == normalized(serial.cells)
        assert distributed.dispatched == 2
        # Second invocation answers fully from the store: zero work.
        resumed = run_campaign(
            grid,
            workers=2,
            dispatch="distributed",
            store_dir=tmp_path / "store",
        )
        assert resumed.dispatched == 0 and resumed.store_hits == 2
        assert normalized(resumed.cells) == normalized(serial.cells)
