"""Tests for campaign parameter grids."""

import pytest

from repro.campaign import CampaignCell, ParameterGrid


class TestCampaignCell:
    def test_name_is_stable_and_readable(self):
        cell = CampaignCell(
            scenario="ramp", params=(("n_stations", 20),), seed=3
        )
        assert cell.name == "ramp/n_stations=20/seed=3"

    def test_kwargs_merge_seed(self):
        cell = CampaignCell(
            scenario="ramp", params=(("n_stations", 20),), seed=3
        )
        assert cell.kwargs == {"n_stations": 20, "seed": 3}

    def test_seedless_cell(self):
        cell = CampaignCell(scenario="day")
        assert cell.name == "day"
        assert cell.kwargs == {}

    def test_picklable(self):
        import pickle

        cell = CampaignCell(scenario="ramp", params=(("x", 1.5),), seed=0)
        assert pickle.loads(pickle.dumps(cell)) == cell


class TestParameterGrid:
    def test_cartesian_expansion(self):
        grid = ParameterGrid(
            "ramp",
            axes={"n_stations": [10, 20], "rtscts_fraction": [0.0, 0.5]},
            seeds=3,
        )
        cells = grid.cells()
        assert len(grid) == len(cells) == 12
        assert len({c.name for c in cells}) == 12
        assert cells[0].params == (("n_stations", 10), ("rtscts_fraction", 0.0))
        assert [c.seed for c in cells[:3]] == [0, 1, 2]

    def test_explicit_seed_values(self):
        grid = ParameterGrid("ramp", seeds=[7, 11])
        assert grid.seed_values == (7, 11)
        assert [c.seed for c in grid.cells()] == [7, 11]

    def test_fixed_params_apply_everywhere(self):
        grid = ParameterGrid(
            "ramp",
            axes={"n_stations": [10, 20]},
            fixed={"duration_s": 5.0},
        )
        for cell in grid.cells():
            assert ("duration_s", 5.0) in cell.params

    def test_no_axes_is_one_cell_per_seed(self):
        assert len(ParameterGrid("plenary", seeds=4)) == 4

    def test_validation(self):
        with pytest.raises(ValueError, match="no values"):
            ParameterGrid("ramp", axes={"n_stations": []})
        with pytest.raises(ValueError, match="both an axis and fixed"):
            ParameterGrid(
                "ramp", axes={"x": [1]}, fixed={"x": 2}
            )
        with pytest.raises(ValueError, match="seed"):
            ParameterGrid("ramp", seeds=0)


class TestGridExtension:
    BASE = ParameterGrid(
        "ramp",
        axes={"n_stations": [10, 20]},
        seeds=2,
        fixed={"duration_s": 2.0},
    )

    def test_extend_axis_keeps_every_original_cell(self):
        grown = self.BASE.extend(axes={"n_stations": [40]})
        assert len(grown) == 6
        original = set(self.BASE.cells())
        assert original <= set(grown.cells())

    def test_extend_axis_ignores_duplicates(self):
        grown = self.BASE.extend(axes={"n_stations": [20, 40]})
        assert grown.axes["n_stations"] == [10, 20, 40]

    def test_extend_seed_count(self):
        grown = self.BASE.extend(seeds=3)
        assert set(self.BASE.cells()) <= set(grown.cells())
        assert grown.seed_values == (0, 1, 2)

    def test_extend_explicit_seed_values(self):
        base = ParameterGrid("ramp", seeds=[7, 11])
        grown = base.extend(seeds=[11, 13])
        assert grown.seed_values == (7, 11, 13)

    def test_extend_validation(self):
        with pytest.raises(ValueError, match="shrink"):
            self.BASE.extend(seeds=1)
        with pytest.raises(ValueError, match="explicit seed list"):
            ParameterGrid("ramp", seeds=[7]).extend(seeds=4)

    def test_new_cells_names_exactly_the_added_work(self):
        grown = self.BASE.extend(axes={"n_stations": [40]}, seeds=3)
        added = grown.new_cells(self.BASE)
        assert set(grown.cells()) - set(self.BASE.cells()) == set(added)
        assert all(
            ("n_stations", 40) in c.params or c.seed == 2 for c in added
        )
        assert grown.new_cells(grown) == []
