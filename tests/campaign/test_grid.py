"""Tests for campaign parameter grids."""

import pytest

from repro.campaign import CampaignCell, ParameterGrid


class TestCampaignCell:
    def test_name_is_stable_and_readable(self):
        cell = CampaignCell(
            scenario="ramp", params=(("n_stations", 20),), seed=3
        )
        assert cell.name == "ramp/n_stations=20/seed=3"

    def test_kwargs_merge_seed(self):
        cell = CampaignCell(
            scenario="ramp", params=(("n_stations", 20),), seed=3
        )
        assert cell.kwargs == {"n_stations": 20, "seed": 3}

    def test_seedless_cell(self):
        cell = CampaignCell(scenario="day")
        assert cell.name == "day"
        assert cell.kwargs == {}

    def test_picklable(self):
        import pickle

        cell = CampaignCell(scenario="ramp", params=(("x", 1.5),), seed=0)
        assert pickle.loads(pickle.dumps(cell)) == cell


class TestParameterGrid:
    def test_cartesian_expansion(self):
        grid = ParameterGrid(
            "ramp",
            axes={"n_stations": [10, 20], "rtscts_fraction": [0.0, 0.5]},
            seeds=3,
        )
        cells = grid.cells()
        assert len(grid) == len(cells) == 12
        assert len({c.name for c in cells}) == 12
        assert cells[0].params == (("n_stations", 10), ("rtscts_fraction", 0.0))
        assert [c.seed for c in cells[:3]] == [0, 1, 2]

    def test_explicit_seed_values(self):
        grid = ParameterGrid("ramp", seeds=[7, 11])
        assert grid.seed_values == (7, 11)
        assert [c.seed for c in grid.cells()] == [7, 11]

    def test_fixed_params_apply_everywhere(self):
        grid = ParameterGrid(
            "ramp",
            axes={"n_stations": [10, 20]},
            fixed={"duration_s": 5.0},
        )
        for cell in grid.cells():
            assert ("duration_s", 5.0) in cell.params

    def test_no_axes_is_one_cell_per_seed(self):
        assert len(ParameterGrid("plenary", seeds=4)) == 4

    def test_validation(self):
        with pytest.raises(ValueError, match="no values"):
            ParameterGrid("ramp", axes={"n_stations": []})
        with pytest.raises(ValueError, match="both an axis and fixed"):
            ParameterGrid(
                "ramp", axes={"x": [1]}, fixed={"x": 2}
            )
        with pytest.raises(ValueError, match="seed"):
            ParameterGrid("ramp", seeds=0)
