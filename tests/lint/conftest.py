"""Fixture-tree harness for the analyzer's self-tests.

``lint_tree`` builds a throwaway repository root (pyproject.toml
marker plus whatever files the test writes at scoped paths like
``src/repro/sim/foo.py``) and runs :func:`repro.lint.run_lint` over
it — so every rule is exercised against code *placed where the rule
applies* and against the same code placed outside its scope.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint


class LintTree:
    def __init__(self, root: Path) -> None:
        self.root = root
        (root / "pyproject.toml").write_text("[project]\nname='fixture'\n")

    def write(self, rel: str, source: str) -> None:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")

    def lint(self, **kwargs):
        return run_lint(self.root, **kwargs)

    def rules_found(self, **kwargs) -> list[str]:
        return [f.rule for f in self.lint(**kwargs).findings]


@pytest.fixture
def lint_tree(tmp_path):
    return LintTree(tmp_path)
