"""The real repository must lint clean against its committed baseline.

This is the self-hosting test: the analyzer runs over the actual tree
(not fixtures) inside tier-1, so a PR that introduces a violation
fails the test suite locally exactly as the CI ``lint-gate`` job
would.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import DEFAULT_BASELINE, compare, load_baseline, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_lints_clean_against_committed_baseline():
    result = run_lint(REPO_ROOT)
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
    delta = compare(result.counts, baseline)
    assert delta.ok, (
        "new lint findings beyond the committed baseline:\n"
        + "\n".join(
            f.render() for f in result.findings if f.key in delta.new
        )
    )


def test_baseline_is_tight():
    """The ratchet only means something if the baseline stays small
    and honest: few grandfathered keys, none of them stale."""
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
    assert len(baseline) <= 3, (
        f"baseline has grown to {len(baseline)} grandfathered keys — "
        "fix findings instead of widening the baseline"
    )
    live = run_lint(REPO_ROOT).counts
    stale = {k: v for k, v in baseline.items() if live.get(k, 0) < v}
    assert not stale, (
        f"baseline entries exceed live counts {stale} — run "
        "`repro lint --write-baseline` to lock the improvement in"
    )


def test_scan_covers_the_whole_tree():
    result = run_lint(REPO_ROOT)
    assert result.files_scanned > 150  # src/ + tests/ today; grows
