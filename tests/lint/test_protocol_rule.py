"""The protocol-schema project rule over multi-file fixture trees.

The rule cross-checks the three protocol sources against the one
registry (``src/repro/protocol_registry.py``) — these tests build
miniature registries and protocol files at the real paths and drive
typos, rogue magics, and declared-but-unused drift through it.
"""

from __future__ import annotations

REGISTRY = """\
DISPATCH_MAGIC = b"RPJ1"
WIRE_MAGICS = {"RPJ1": "dispatch"}
DISPATCH_OPS = {
    "hello": "client greets",
    "welcome": "server answers",
    "lease": "client asks for work",
}
"""


class TestProtocolRule:
    def test_clean_vocabulary_passes(self, lint_tree):
        lint_tree.write("src/repro/protocol_registry.py", REGISTRY)
        lint_tree.write(
            "src/repro/campaign/dispatch.py",
            """\
            def handle(message):
                op = message.get("op")
                if op == "hello":
                    return {"op": "welcome"}
                if op == "lease":
                    return {"op": "welcome"}
                return None
            """,
        )
        assert lint_tree.rules_found() == []

    def test_op_typo_gets_did_you_mean(self, lint_tree):
        lint_tree.write("src/repro/protocol_registry.py", REGISTRY)
        lint_tree.write(
            "src/repro/campaign/dispatch.py",
            """\
            def handle(message):
                if message.get("op") == "hello":
                    return {"op": "welcome"}
                return None
            """,
        )
        lint_tree.write(
            "src/repro/campaign/worker.py",
            """\
            def talk(channel):
                reply = channel.request({"op": "helo"})
                if reply.get("op") == "welcome":
                    return channel.request({"op": "lease"})
                return None
            """,
        )
        result = lint_tree.lint()
        assert [f.rule for f in result.findings] == ["proto-op-unknown"]
        assert "did you mean 'hello'" in result.findings[0].message

    def test_comparison_literals_checked_too(self, lint_tree):
        lint_tree.write("src/repro/protocol_registry.py", REGISTRY)
        lint_tree.write(
            "src/repro/campaign/dispatch.py",
            """\
            def handle(message):
                op = message.get("op")
                if op in ("hello", "leese"):
                    return {"op": "welcome"}
                if message.get("op") != "lease":
                    return None
                return {"op": "welcome"}
            """,
        )
        result = lint_tree.lint()
        assert [f.rule for f in result.findings] == ["proto-op-unknown"]
        assert "'leese'" in result.findings[0].message

    def test_rogue_magic_flagged(self, lint_tree):
        lint_tree.write("src/repro/protocol_registry.py", REGISTRY)
        lint_tree.write(
            "src/repro/serve/protocol.py",
            'BATCH_MAGIC = b"RPXX"\n',
        )
        result = lint_tree.lint()
        # the rogue magic, plus the three ops now used by no file
        rogue = [f for f in result.findings if f.rule == "proto-magic"]
        assert len(rogue) == 1
        assert rogue[0].path == "src/repro/serve/protocol.py"

    def test_declared_but_unused_op_is_drift(self, lint_tree):
        lint_tree.write("src/repro/protocol_registry.py", REGISTRY)
        lint_tree.write(
            "src/repro/campaign/dispatch.py",
            """\
            def handle(message):
                if message.get("op") == "hello":
                    return {"op": "welcome"}
                return None
            """,
        )
        result = lint_tree.lint()
        assert [f.rule for f in result.findings] == ["proto-op-unused"]
        assert "'lease'" in result.findings[0].message
        assert result.findings[0].path == "src/repro/protocol_registry.py"

    def test_registry_magic_const_must_be_in_wire_magics(self, lint_tree):
        lint_tree.write(
            "src/repro/protocol_registry.py",
            REGISTRY + 'STRAY_MAGIC = b"RPZ9"\n',
        )
        lint_tree.write(
            "src/repro/campaign/dispatch.py",
            """\
            def handle(message):
                op = message.get("op")
                if op == "hello" or op == "lease":
                    return {"op": "welcome"}
                return None
            """,
        )
        result = lint_tree.lint()
        assert [f.rule for f in result.findings] == ["proto-magic"]
        assert "STRAY_MAGIC" in result.findings[0].message

    def test_tree_without_registry_skips_silently(self, lint_tree):
        lint_tree.write(
            "src/repro/campaign/dispatch.py",
            'def f():\n    return {"op": "anything-goes"}\n',
        )
        assert lint_tree.rules_found() == []


class TestRealRepoVocabulary:
    def test_registry_ops_match_the_wire(self):
        """The runtime guard and the static rule read the same source
        of truth."""
        from repro.protocol_registry import DISPATCH_OPS, WIRE_MAGICS

        assert {"hello", "welcome", "lease", "grant", "wait", "done",
                "heartbeat", "ok", "gone", "complete", "fail", "bye",
                "status", "error"} == set(DISPATCH_OPS)
        assert set(WIRE_MAGICS) == {"RPJ1", "RPF1"}

    def test_dispatch_and_serve_reexport_registry_magics(self):
        from repro import protocol_registry
        from repro.campaign import dispatch
        from repro.serve import protocol

        assert dispatch.DISPATCH_MAGIC is protocol_registry.DISPATCH_MAGIC
        assert protocol.BATCH_MAGIC is protocol_registry.BATCH_MAGIC
