"""Positive + negative fixture per rule family.

Each test writes the offending (or innocent) code into a throwaway
tree at a path where the rule's scope applies, and asserts the exact
rule ids that fire.  The negative twin is the same code either cleaned
up or placed outside the rule's scope — proving the scope actually
gates.
"""

from __future__ import annotations


class TestDeterminismRules:
    def test_stdlib_random_import_flagged_in_sim(self, lint_tree):
        lint_tree.write(
            "src/repro/sim/foo.py",
            """\
            import random
            from random import choice
            """,
        )
        assert lint_tree.rules_found() == [
            "det-stdlib-random", "det-stdlib-random"
        ]

    def test_stdlib_random_fine_outside_scope(self, lint_tree):
        lint_tree.write("src/repro/viz_extra.py", "import random\n")
        assert lint_tree.rules_found() == []

    def test_np_global_state_flagged(self, lint_tree):
        lint_tree.write(
            "src/repro/campaign/foo.py",
            """\
            import numpy as np

            def f():
                np.random.seed(0)
                return np.random.randint(10)
            """,
        )
        assert lint_tree.rules_found() == ["det-np-global", "det-np-global"]

    def test_seeded_default_rng_is_the_blessed_path(self, lint_tree):
        lint_tree.write(
            "src/repro/sim/foo.py",
            """\
            import numpy as np

            def f(seed):
                good = np.random.default_rng(seed)
                bad = np.random.default_rng()
                return good, bad
            """,
        )
        assert lint_tree.rules_found() == ["det-unseeded-rng"]

    def test_wall_clock_flagged_monotonic_not(self, lint_tree):
        lint_tree.write(
            "src/repro/sim/foo.py",
            """\
            import time

            def f():
                t0 = time.perf_counter()
                t1 = time.monotonic()
                return time.time() - t0 + t1
            """,
        )
        assert lint_tree.rules_found() == ["det-wall-clock"]

    def test_datetime_now_flagged(self, lint_tree):
        lint_tree.write(
            "src/repro/campaign/foo.py",
            "import datetime\nstamp = datetime.datetime.now()\n",
        )
        assert lint_tree.rules_found() == ["det-wall-clock"]


class TestAsyncBlockingRules:
    def test_blocking_calls_in_async_def_flagged(self, lint_tree):
        lint_tree.write(
            "src/repro/serve/foo.py",
            """\
            import subprocess
            import time

            async def handler():
                time.sleep(1)
                data = open("x").read()
                subprocess.run(["ls"])
                return data
            """,
        )
        assert sorted(lint_tree.rules_found()) == [
            "async-open", "async-sleep", "async-subprocess"
        ]

    def test_sync_socket_in_async_def_flagged(self, lint_tree):
        lint_tree.write(
            "src/repro/serve/foo.py",
            """\
            import socket

            async def handler():
                return socket.create_connection(("h", 1), timeout=5)
            """,
        )
        # both the event-loop rule and the plain timeout rule pass
        # judgement; here the timeout is present so only async-socket.
        assert lint_tree.rules_found() == ["async-socket"]

    def test_sync_helper_nested_in_async_def_is_fine(self, lint_tree):
        # The executor-offload pattern: a sync def *defined inside* the
        # coroutine and handed to run_in_executor blocks a worker
        # thread, not the loop.
        lint_tree.write(
            "src/repro/serve/foo.py",
            """\
            import asyncio
            import time

            async def handler():
                def _work():
                    time.sleep(1)
                    return open("x").read()

                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, _work)
            """,
        )
        assert lint_tree.rules_found() == []

    def test_same_code_outside_serve_is_fine(self, lint_tree):
        lint_tree.write(
            "src/repro/other.py",
            "import time\n\nasync def f():\n    time.sleep(1)\n",
        )
        assert lint_tree.rules_found() == []


class TestExceptionRules:
    def test_bare_except_flagged(self, lint_tree):
        lint_tree.write(
            "src/repro/foo.py",
            """\
            def f():
                try:
                    return 1
                except:
                    return 2
            """,
        )
        assert lint_tree.rules_found() == ["exc-bare"]

    def test_base_exception_without_reraise_flagged(self, lint_tree):
        lint_tree.write(
            "src/repro/foo.py",
            """\
            def f():
                try:
                    return 1
                except BaseException:
                    return 2
            """,
        )
        assert lint_tree.rules_found() == ["exc-swallow"]

    def test_base_exception_with_reraise_is_fine(self, lint_tree):
        lint_tree.write(
            "src/repro/foo.py",
            """\
            def f(cleanup):
                try:
                    return 1
                except BaseException:
                    cleanup()
                    raise
            """,
        )
        assert lint_tree.rules_found() == []

    def test_narrow_except_is_fine(self, lint_tree):
        lint_tree.write(
            "src/repro/foo.py",
            """\
            def f():
                try:
                    return 1
                except (ValueError, OSError):
                    return 2
            """,
        )
        assert lint_tree.rules_found() == []


class TestHygieneRules:
    def test_sleep_in_test_flagged(self, lint_tree):
        lint_tree.write(
            "tests/test_foo.py",
            "import time\n\ndef test_x():\n    time.sleep(0.1)\n",
        )
        assert lint_tree.rules_found() == ["test-sleep"]

    def test_sleep_in_src_not_a_test_sleep(self, lint_tree):
        lint_tree.write(
            "src/repro/foo.py",
            "import time\n\ndef backoff():\n    time.sleep(0.1)\n",
        )
        assert lint_tree.rules_found() == []


class TestResourceRules:
    def test_connect_without_timeout_flagged(self, lint_tree):
        lint_tree.write(
            "src/repro/foo.py",
            "import socket\nsock = socket.create_connection(('h', 1))\n",
        )
        assert lint_tree.rules_found() == ["sock-no-timeout"]

    def test_connect_with_timeout_is_fine(self, lint_tree):
        lint_tree.write(
            "src/repro/foo.py",
            "import socket\n"
            "sock = socket.create_connection(('h', 1), timeout=5.0)\n",
        )
        assert lint_tree.rules_found() == []

    def test_positional_timeout_and_kwargs_splat_accepted(self, lint_tree):
        lint_tree.write(
            "src/repro/foo.py",
            """\
            import socket

            def f(kw):
                a = socket.create_connection(("h", 1), 5.0)
                b = socket.create_connection(("h", 1), **kw)
                return a, b
            """,
        )
        assert lint_tree.rules_found() == []

    def test_bare_capture_open_flagged(self, lint_tree):
        lint_tree.write(
            "src/repro/pcap/foo.py",
            """\
            import gzip

            def read(path):
                fp = gzip.open(path, "rb")
                return fp.read()
            """,
        )
        assert lint_tree.rules_found() == ["capture-open-no-ctx"]

    def test_path_open_outside_with_flagged(self, lint_tree):
        lint_tree.write(
            "src/repro/corpus/foo.py",
            "def read(path):\n    return path.open('rb').read()\n",
        )
        assert lint_tree.rules_found() == ["capture-open-no-ctx"]

    def test_with_managed_opens_are_fine(self, lint_tree):
        lint_tree.write(
            "src/repro/corpus/foo.py",
            """\
            import gzip

            def read(path, compressed):
                with (gzip.open(path) if compressed else path.open("rb")) as fp:
                    head = fp.read(8)
                with path.open("wb") as raw, gzip.GzipFile(
                    fileobj=raw, mode="wb", mtime=0
                ) as out:
                    out.write(head)
            """,
        )
        assert lint_tree.rules_found() == []

    def test_capture_open_rule_scoped_to_capture_io(self, lint_tree):
        lint_tree.write(
            "src/repro/sim/foo.py",
            "def read(path):\n    return open(path, 'rb').read()\n",
        )
        assert lint_tree.rules_found() == []


class TestEngineMeta:
    def test_syntax_error_becomes_parse_error_finding(self, lint_tree):
        lint_tree.write("src/repro/foo.py", "def broken(:\n")
        result = lint_tree.lint()
        assert [f.rule for f in result.findings] == ["parse-error"]
        assert "syntax error" in result.findings[0].message

    def test_findings_sorted_and_counted_by_rule_path(self, lint_tree):
        lint_tree.write(
            "src/repro/sim/b.py", "import random\nimport random as r\n"
        )
        lint_tree.write("src/repro/sim/a.py", "import random\n")
        result = lint_tree.lint()
        assert [f.path for f in result.findings] == [
            "src/repro/sim/a.py",
            "src/repro/sim/b.py",
            "src/repro/sim/b.py",
        ]
        assert result.counts == {
            "det-stdlib-random:src/repro/sim/a.py": 1,
            "det-stdlib-random:src/repro/sim/b.py": 2,
        }

    def test_select_filters_reporting(self, lint_tree):
        lint_tree.write(
            "src/repro/sim/foo.py", "import random\nimport time\nt = time.time()\n"
        )
        assert lint_tree.rules_found(select=["det-wall-clock"]) == [
            "det-wall-clock"
        ]

    def test_select_unknown_rule_suggests(self, lint_tree):
        import pytest

        with pytest.raises(ValueError, match="did you mean 'det-wall-clock'"):
            lint_tree.lint(select=["det-wall-clok"])
