"""The ratcheting baseline: loading, writing, comparing, determinism."""

from __future__ import annotations

import json

import pytest

from repro.lint import (
    BaselineError,
    compare,
    load_baseline,
    write_baseline,
)


class TestLoadWrite:
    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "b.json"
        write_baseline(path, {"rule:a.py": 2, "rule:b.py": 1})
        assert load_baseline(path) == {"rule:a.py": 2, "rule:b.py": 1}

    def test_write_is_deterministic_and_drops_zeros(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_baseline(a, {"z": 1, "a": 2, "gone": 0})
        write_baseline(b, {"a": 2, "gone": 0, "z": 1})
        assert a.read_bytes() == b.read_bytes()
        assert load_baseline(a) == {"a": 2, "z": 1}

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{nope")
        with pytest.raises(BaselineError, match="corrupt"):
            load_baseline(path)

    def test_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"counts": {"k": -1}}))
        with pytest.raises(BaselineError, match="positive integers"):
            load_baseline(path)
        path.write_text(json.dumps([1, 2]))
        with pytest.raises(BaselineError, match="'counts' mapping"):
            load_baseline(path)


class TestRatchet:
    def test_equal_counts_ok(self):
        delta = compare({"k": 2}, {"k": 2})
        assert delta.ok and not delta.new and not delta.improved

    def test_new_finding_fails(self):
        delta = compare({"k": 3}, {"k": 2})
        assert not delta.ok
        assert delta.new == {"k": (3, 2)}

    def test_brand_new_key_fails(self):
        delta = compare({"k": 1}, {})
        assert not delta.ok

    def test_improvement_noted_not_failed(self):
        delta = compare({"k": 1}, {"k": 2, "fixed": 1})
        assert delta.ok
        assert delta.improved == {"k": (1, 2), "fixed": (0, 1)}

    def test_grandfathered_count_may_move_between_lines(self):
        # keys are rule:path, not line numbers: refactoring a file
        # never reads as a new finding while the count holds.
        delta = compare({"det-wall-clock:a.py": 1}, {"det-wall-clock:a.py": 1})
        assert delta.ok
