"""CLI semantics: exit codes, formats, and the CI gate behaviour.

``python -m repro.lint`` and ``repro lint`` share one implementation;
these tests drive it through both front doors.
"""

from __future__ import annotations

import json

import pytest

from repro.lint.cli import main as lint_main

CLEAN = "def fine():\n    return 1\n"
DIRTY = "import time\n\ndef stamp():\n    return time.time()\n"


@pytest.fixture
def fixture_root(lint_tree):
    return lint_tree


class TestExitCodes:
    def test_clean_tree_exits_zero(self, fixture_root, capsys):
        fixture_root.write("src/repro/sim/foo.py", CLEAN)
        assert lint_main(["--root", str(fixture_root.root)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, fixture_root, capsys):
        fixture_root.write("src/repro/sim/foo.py", DIRTY)
        assert lint_main(["--root", str(fixture_root.root)]) == 1
        out = capsys.readouterr().out
        assert "det-wall-clock" in out and "[error]" in out

    def test_missing_root_dir_is_usage_error(self, tmp_path, capsys):
        assert lint_main(["--root", str(tmp_path / "nowhere")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_no_pyproject_above_cwd_is_usage_error(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        assert lint_main([]) == 2
        assert "pyproject.toml" in capsys.readouterr().err

    def test_bad_select_is_usage_error(self, fixture_root, capsys):
        fixture_root.write("src/repro/sim/foo.py", CLEAN)
        rc = lint_main(
            ["--root", str(fixture_root.root), "--select", "det-wall-clok"]
        )
        assert rc == 2
        assert "did you mean 'det-wall-clock'" in capsys.readouterr().err

    def test_corrupt_baseline_is_usage_error(self, fixture_root, capsys):
        fixture_root.write("src/repro/sim/foo.py", CLEAN)
        (fixture_root.root / "lint-baseline.json").write_text("{nope")
        rc = lint_main(["--root", str(fixture_root.root), "--baseline"])
        assert rc == 2


class TestBaselineGate:
    """The ratchet exactly as the CI ``lint-gate`` job runs it."""

    def _gate(self, root):
        return lint_main(["--root", str(root), "--baseline"])

    def test_grandfathered_finding_passes_then_injected_one_fails(
        self, fixture_root, capsys
    ):
        fixture_root.write("src/repro/sim/known.py", DIRTY)
        assert (
            lint_main(
                ["--root", str(fixture_root.root), "--write-baseline"]
            )
            == 0
        )
        assert self._gate(fixture_root.root) == 0
        assert "(grandfathered)" in capsys.readouterr().out

        # inject a fresh violation: the gate must go red
        fixture_root.write("src/repro/sim/injected.py", DIRTY)
        assert self._gate(fixture_root.root) == 1
        assert "(NEW)" in capsys.readouterr().out

    def test_growing_a_grandfathered_file_fails(self, fixture_root):
        fixture_root.write("src/repro/sim/known.py", DIRTY)
        lint_main(["--root", str(fixture_root.root), "--write-baseline"])
        fixture_root.write(
            "src/repro/sim/known.py", DIRTY + "\nalso = time.time()\n"
        )
        assert self._gate(fixture_root.root) == 1

    def test_fixing_a_finding_passes_and_suggests_ratchet(
        self, fixture_root, capsys
    ):
        fixture_root.write("src/repro/sim/known.py", DIRTY)
        lint_main(["--root", str(fixture_root.root), "--write-baseline"])
        fixture_root.write("src/repro/sim/known.py", CLEAN)
        assert self._gate(fixture_root.root) == 0
        assert "--write-baseline" in capsys.readouterr().out

    def test_write_baseline_then_gate_is_always_green(self, fixture_root):
        fixture_root.write("src/repro/sim/a.py", DIRTY)
        fixture_root.write("src/repro/serve/b.py", "async def f():\n    open('x')\n")
        lint_main(["--root", str(fixture_root.root), "--write-baseline"])
        assert self._gate(fixture_root.root) == 0


class TestOutput:
    def test_json_format_is_machine_readable(self, fixture_root, capsys):
        fixture_root.write("src/repro/sim/foo.py", DIRTY)
        rc = lint_main(
            ["--root", str(fixture_root.root), "--format", "json", "--baseline"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["ok"] is False
        assert payload["new"] == ["det-wall-clock:src/repro/sim/foo.py"]
        (finding,) = payload["findings"]
        assert finding["rule"] == "det-wall-clock"
        assert finding["path"] == "src/repro/sim/foo.py"

    def test_list_rules_prints_catalog(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("det-wall-clock", "async-open", "proto-op-unknown",
                        "test-sleep", "sock-no-timeout", "exc-bare"):
            assert rule_id in out

    def test_paths_argument_narrows_the_scan(self, fixture_root, capsys):
        fixture_root.write("src/repro/sim/dirty.py", DIRTY)
        fixture_root.write("src/repro/sim/clean.py", CLEAN)
        rc = lint_main(
            ["--root", str(fixture_root.root), "src/repro/sim/clean.py"]
        )
        assert rc == 0


class TestToolsIntegration:
    def test_repro_lint_verb_routes_here(self, fixture_root, capsys):
        from repro.tools import main as tools_main

        fixture_root.write("src/repro/sim/foo.py", DIRTY)
        rc = tools_main(["lint", "--root", str(fixture_root.root)])
        assert rc == 1
        assert "det-wall-clock" in capsys.readouterr().out

    def test_module_entry_is_dependency_free(self):
        """``python -m repro.lint`` must not drag in numpy — it is the
        form CI runs on a bare interpreter."""
        import subprocess
        import sys

        code = (
            "import sys\n"
            "import repro.lint.cli\n"
            "heavy = [m for m in ('numpy', 'tomllib') if m in sys.modules]\n"
            "sys.exit(1 if heavy else 0)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[2]),
        )
        assert proc.returncode == 0
