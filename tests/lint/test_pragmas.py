"""Suppression pragmas: parsing, coverage, and the meta-findings."""

from __future__ import annotations

from repro.lint import parse_pragmas


class TestParsing:
    def test_trailing_pragma_covers_its_own_line(self):
        src = (
            "import time\n"
            "t = time.time()  # repro: lint-ok[det-wall-clock] status stamp only\n"
        )
        (pragma,) = parse_pragmas(src)
        assert pragma.valid
        assert pragma.rules == ("det-wall-clock",)
        assert pragma.reason == "status stamp only"
        assert not pragma.own_line
        assert pragma.covers(2, "det-wall-clock")
        assert not pragma.covers(3, "det-wall-clock")
        assert not pragma.covers(2, "det-np-global")

    def test_own_line_pragma_covers_next_line(self):
        src = (
            "# repro: lint-ok[test-sleep] warmup outside the timed region\n"
            "time.sleep(1)\n"
        )
        (pragma,) = parse_pragmas(src)
        assert pragma.own_line
        assert pragma.covers(2, "test-sleep")

    def test_multiple_rules_in_one_bracket(self):
        src = "x()  # repro: lint-ok[async-open, async-sleep] startup, loop not live\n"
        (pragma,) = parse_pragmas(src)
        assert pragma.rules == ("async-open", "async-sleep")

    def test_missing_bracket_is_malformed(self):
        (pragma,) = parse_pragmas("x()  # repro: lint-ok because reasons\n")
        assert not pragma.valid
        assert any("missing [rule-id]" in p for p in pragma.problems)

    def test_short_reason_is_malformed(self):
        (pragma,) = parse_pragmas("x()  # repro: lint-ok[test-sleep] ok\n")
        assert not pragma.valid
        assert any("requires a reason" in p for p in pragma.problems)

    def test_pragma_text_inside_string_literal_ignored(self):
        src = 'doc = "example: # repro: lint-ok[test-sleep] not a pragma"\n'
        assert parse_pragmas(src) == []


class TestEngineIntegration:
    def test_valid_pragma_suppresses_finding(self, lint_tree):
        lint_tree.write(
            "src/repro/sim/foo.py",
            "import time\n"
            "t = time.time()  # repro: lint-ok[det-wall-clock] operator display only\n",
        )
        assert lint_tree.rules_found() == []

    def test_reasonless_pragma_does_not_suppress(self, lint_tree):
        lint_tree.write(
            "src/repro/sim/foo.py",
            "import time\nt = time.time()  # repro: lint-ok[det-wall-clock]\n",
        )
        assert sorted(lint_tree.rules_found()) == [
            "det-wall-clock", "pragma-malformed"
        ]

    def test_unknown_rule_id_gets_did_you_mean(self, lint_tree):
        lint_tree.write(
            "src/repro/foo.py",
            "x = 1  # repro: lint-ok[det-wall-clok] a perfectly fine reason\n",
        )
        result = lint_tree.lint()
        rules = sorted(f.rule for f in result.findings)
        assert rules == ["pragma-unknown-rule", "pragma-unused"]
        unknown = next(
            f for f in result.findings if f.rule == "pragma-unknown-rule"
        )
        assert "did you mean 'det-wall-clock'" in unknown.message

    def test_unused_pragma_is_a_finding(self, lint_tree):
        lint_tree.write(
            "src/repro/foo.py",
            "x = 1  # repro: lint-ok[det-wall-clock] nothing here reads clocks\n",
        )
        assert lint_tree.rules_found() == ["pragma-unused"]

    def test_pragma_for_other_rule_does_not_mask(self, lint_tree):
        lint_tree.write(
            "src/repro/sim/foo.py",
            "import random  # repro: lint-ok[det-wall-clock] wrong rule entirely\n",
        )
        assert sorted(lint_tree.rules_found()) == [
            "det-stdlib-random", "pragma-unused"
        ]
