"""Deadline-bounded polling for tier-1 tests.

Tests must not sleep for fixed intervals (the ``test-sleep`` lint
rule): a fixed sleep is pure waste when the condition is already true
and a flake when the machine is slow.  :func:`wait_until` polls a
predicate under a hard deadline instead — fast on fast machines,
patient on slow ones.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

T = TypeVar("T")

__all__ = ["wait_until"]


def wait_until(
    predicate: Callable[[], T],
    *,
    timeout_s: float = 60.0,
    interval_s: float = 0.05,
    message: str = "condition never became true",
    on_tick: Callable[[], None] | None = None,
) -> T:
    """Poll ``predicate`` until it returns a truthy value, and return it.

    ``on_tick`` (if given) runs before each poll — the place for
    liveness assertions like "the daemon process is still up".  Raises
    ``AssertionError`` with ``message`` once ``timeout_s`` elapses.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        if on_tick is not None:
            on_tick()
        value = predicate()
        if value:
            return value
        assert time.monotonic() < deadline, message
        time.sleep(interval_s)  # repro: lint-ok[test-sleep] the one sanctioned sleep: every test polls through this helper
