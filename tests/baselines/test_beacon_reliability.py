"""Tests for the beacon-reliability congestion baseline (E-WIND)."""

import numpy as np
import pytest

from repro.baselines import beacon_reliability_series
from repro.frames import Trace

from ..conftest import beacon, data


class TestReliability:
    def test_perfect_beacon_stream_scores_one(self, tiny_roster):
        rows = [beacon(i * 100_000, src=1) for i in range(20)]  # 2 s at 10/s
        series = beacon_reliability_series(Trace.from_rows(rows), tiny_roster)
        assert len(series) == 2
        assert np.allclose(series.reliability, 1.0)
        assert np.allclose(series.congestion_estimate(), 0.0)

    def test_missing_beacons_lower_reliability(self, tiny_roster):
        rows = [beacon(i * 100_000, src=1) for i in range(10)]       # full second
        rows += [beacon(1_000_000 + i * 200_000, src=1) for i in range(5)]  # half
        series = beacon_reliability_series(Trace.from_rows(rows), tiny_roster)
        assert series.reliability[0] == pytest.approx(1.0)
        assert series.reliability[1] == pytest.approx(0.5)

    def test_expected_count_scales_with_audible_aps(self, tiny_roster):
        rows = [beacon(i * 100_000, src=1) for i in range(10)]
        series = beacon_reliability_series(Trace.from_rows(rows), tiny_roster)
        assert series.expected_per_second == 10.0

    def test_correlation_with_utilization(self, tiny_roster):
        # Reliability degrades second by second; utilization rises.
        rows = []
        for s, per_second in enumerate((10, 8, 6, 4, 2)):
            step = 1_000_000 // max(per_second, 1)
            rows.extend(
                beacon(s * 1_000_000 + i * step, src=1) for i in range(per_second)
            )
        trace = Trace.from_rows(rows)
        series = beacon_reliability_series(trace, tiny_roster)
        utilization = np.array([10.0, 30.0, 50.0, 70.0, 90.0])
        corr = series.correlation_with(utilization)
        assert corr > 0.95  # congestion estimate tracks utilization

    def test_correlation_degenerate_cases(self, tiny_roster):
        rows = [beacon(0, src=1)]
        series = beacon_reliability_series(Trace.from_rows(rows), tiny_roster)
        assert np.isnan(series.correlation_with(np.array([50.0])))

    def test_non_beacon_frames_ignored(self, tiny_roster):
        rows = [beacon(i * 100_000, src=1) for i in range(10)]
        rows += [data(i * 90_000 + 5000, 10, 1) for i in range(11)]
        series = beacon_reliability_series(
            Trace.from_rows(rows).sorted_by_time(), tiny_roster
        )
        assert series.reliability[0] == pytest.approx(1.0)
