"""Tests for the Cantieni-style multirate DCF model."""

import pytest

from repro.baselines import FrameClass, bianchi_fixed_point, multirate_dcf_model


class TestBianchiFixedPoint:
    def test_single_station_never_collides(self):
        tau, p = bianchi_fixed_point(1)
        assert p == 0.0
        assert 0 < tau < 1

    def test_collision_probability_grows_with_population(self):
        ps = [bianchi_fixed_point(n)[1] for n in (2, 5, 10, 25, 50)]
        assert ps == sorted(ps)
        assert ps[-1] > 0.4

    def test_tau_shrinks_with_population(self):
        taus = [bianchi_fixed_point(n)[0] for n in (2, 5, 10, 25, 50)]
        assert taus == sorted(taus, reverse=True)

    def test_fixed_point_consistency(self):
        tau, p = bianchi_fixed_point(10)
        assert p == pytest.approx(1 - (1 - tau) ** 9, abs=1e-6)

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            bianchi_fixed_point(0)


class TestMultirateModel:
    def test_s11_success_advantage(self):
        """The paper's §6.3 cross-check: under saturation, small frames
        at 11 Mbps succeed more often than XL frames at 1 Mbps."""
        result = multirate_dcf_model(
            (FrameClass(200, 11.0, 8), FrameClass(1400, 1.0, 8)),
            snr_db=15.0,
        )
        assert (
            result.success_probability["200B@11"]
            > result.success_probability["1400B@1"]
        )

    def test_probabilities_bounded(self):
        result = multirate_dcf_model(
            (FrameClass(500, 5.5, 4), FrameClass(1000, 2.0, 4)), snr_db=12.0
        )
        for p in result.success_probability.values():
            assert 0.0 <= p <= 1.0
        assert 0.0 <= result.collision_probability < 1.0

    def test_throughput_positive_and_below_capacity(self):
        result = multirate_dcf_model((FrameClass(1400, 11.0, 10),), snr_db=25.0)
        assert 0 < result.total_throughput_mbps < 11.0

    def test_more_contenders_lower_success(self):
        small = multirate_dcf_model((FrameClass(1000, 11.0, 3),), snr_db=25.0)
        crowd = multirate_dcf_model((FrameClass(1000, 11.0, 40),), snr_db=25.0)
        assert (
            crowd.success_probability["1000B@11"]
            < small.success_probability["1000B@11"]
        )

    def test_low_snr_hurts_fast_class_most(self):
        result = multirate_dcf_model(
            (FrameClass(1000, 11.0, 5), FrameClass(1000, 1.0, 5)), snr_db=4.0
        )
        assert (
            result.success_probability["1000B@1"]
            > result.success_probability["1000B@11"]
        )

    def test_empty_classes_rejected(self):
        with pytest.raises(ValueError):
            multirate_dcf_model(())
