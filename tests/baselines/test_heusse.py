"""Tests for the Heusse et al. performance-anomaly baseline."""

import pytest

from repro.baselines import anomaly_penalty, anomaly_throughput


class TestAnomaly:
    def test_one_slow_station_drags_everyone(self):
        """The headline anomaly: one 1 Mbps peer more than halves fast
        stations' throughput."""
        fast_only = anomaly_throughput((11.0, 11.0, 11.0))
        mixed = anomaly_throughput((11.0, 11.0, 1.0))
        assert mixed.per_station_mbps < fast_only.per_station_mbps / 2

    def test_equal_shares_per_station(self):
        """DCF fairness: all stations get the same goodput, fast or slow."""
        result = anomaly_throughput((11.0, 1.0))
        assert result.total_mbps == pytest.approx(2 * result.per_station_mbps)

    def test_uniform_cell_scales_inversely_with_population(self):
        two = anomaly_throughput((11.0,) * 2)
        four = anomaly_throughput((11.0,) * 4)
        assert four.per_station_mbps == pytest.approx(
            two.per_station_mbps / 2
        )

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            anomaly_throughput(())


class TestPenalty:
    def test_no_slow_peers_no_penalty(self):
        assert anomaly_penalty(3, 0) == pytest.approx(1.0)

    def test_penalty_grows_with_slow_population(self):
        penalties = [anomaly_penalty(3, k) for k in (0, 1, 2, 3)]
        assert penalties == sorted(penalties, reverse=True)
        assert penalties[-1] < 0.5

    def test_penalty_depends_on_rate_gap(self):
        mild = anomaly_penalty(3, 1, slow_rate_mbps=5.5)
        severe = anomaly_penalty(3, 1, slow_rate_mbps=1.0)
        assert severe < mild

    def test_requires_fast_station(self):
        with pytest.raises(ValueError):
            anomaly_penalty(0, 1)
