"""Tests for the Jun et al. theoretical maximum throughput baseline."""

import pytest

from repro.baselines import theoretical_maximum_throughput, tmt_table


class TestPublishedValues:
    def test_1500b_at_11mbps_is_6_06(self):
        """Jun et al. report ~6.1 Mbps TMT for 1500-byte payloads at 11 Mbps."""
        tmt = theoretical_maximum_throughput(1500, 11.0)
        assert tmt.throughput_mbps == pytest.approx(6.06, abs=0.1)

    def test_paper_accounting_without_backoff(self):
        """With the paper's D_BO = 0, the ceiling rises toward ~7.2 Mbps."""
        tmt = theoretical_maximum_throughput(1500, 11.0, mean_backoff_slots=0.0)
        assert tmt.throughput_mbps == pytest.approx(7.18, abs=0.1)

    def test_1mbps_ceiling_below_1(self):
        tmt = theoretical_maximum_throughput(1500, 1.0)
        assert tmt.throughput_mbps < 1.0


class TestStructure:
    def test_rts_cts_reduces_tmt(self):
        plain = theoretical_maximum_throughput(1500, 11.0)
        protected = theoretical_maximum_throughput(1500, 11.0, rts_cts=True)
        assert protected.throughput_mbps < plain.throughput_mbps
        assert protected.cycle_us > plain.cycle_us

    def test_tmt_increases_with_size(self):
        small = theoretical_maximum_throughput(100, 11.0)
        large = theoretical_maximum_throughput(1500, 11.0)
        assert large.throughput_mbps > small.throughput_mbps

    def test_tmt_increases_with_rate(self):
        values = [
            theoretical_maximum_throughput(1500, r).throughput_mbps
            for r in (1.0, 2.0, 5.5, 11.0)
        ]
        assert values == sorted(values)

    def test_tmt_never_exceeds_link_rate(self):
        for point in tmt_table():
            assert point.throughput_mbps < point.rate_mbps

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            theoretical_maximum_throughput(0, 11.0)

    def test_table_covers_grid(self):
        table = tmt_table(sizes=(100, 1500), rates=(1.0, 11.0))
        assert len(table) == 4
