"""Shared fixtures: hand-built traces and one small cached scenario run."""

from __future__ import annotations

import pytest

from repro.frames import BROADCAST, FrameRow, FrameType, NodeInfo, NodeRoster, Trace
from repro.sim import ConstantRate, ScenarioConfig, run_scenario


def data(t, src, dst, size=1000, rate=11.0, retry=False, seq=0, channel=1, snr=25.0):
    """Shorthand DATA frame row."""
    return FrameRow(
        time_us=t, ftype=FrameType.DATA, rate_mbps=rate, size=size,
        src=src, dst=dst, retry=retry, seq=seq, channel=channel, snr_db=snr,
    )


def ack(t, src, dst, channel=1):
    """Shorthand ACK frame row (src = acker, dst = data sender)."""
    return FrameRow(
        time_us=t, ftype=FrameType.ACK, rate_mbps=1.0, size=14,
        src=src, dst=dst, channel=channel,
    )


def rts(t, src, dst, channel=1):
    return FrameRow(
        time_us=t, ftype=FrameType.RTS, rate_mbps=1.0, size=20,
        src=src, dst=dst, channel=channel,
    )


def cts(t, src, dst, channel=1):
    return FrameRow(
        time_us=t, ftype=FrameType.CTS, rate_mbps=1.0, size=14,
        src=src, dst=dst, channel=channel,
    )


def beacon(t, src, channel=1):
    return FrameRow(
        time_us=t, ftype=FrameType.BEACON, rate_mbps=1.0, size=80,
        src=src, dst=BROADCAST, channel=channel,
    )


@pytest.fixture
def tiny_roster():
    """One AP (id 1) and two stations (ids 10, 11)."""
    return NodeRoster(
        [
            NodeInfo(node_id=1, is_ap=True, name="ap-1"),
            NodeInfo(node_id=10, is_ap=False, name="sta-10"),
            NodeInfo(node_id=11, is_ap=False, name="sta-11", uses_rtscts=True),
        ]
    )


@pytest.fixture
def exchange_trace():
    """A clean DATA->ACK, RTS->CTS->DATA->ACK capture plus a beacon."""
    rows = [
        beacon(0, src=1),
        data(1_000, src=10, dst=1, size=1400, rate=11.0, seq=5),
        ack(2_400, src=1, dst=10),
        rts(10_000, src=11, dst=1),
        cts(10_400, src=1, dst=11),
        data(10_800, src=11, dst=1, size=300, rate=1.0, seq=9),
        ack(13_600, src=1, dst=11),
    ]
    return Trace.from_rows(rows)


@pytest.fixture(scope="session")
def small_scenario():
    """One cached 8-second simulated capture (6 stations, 1 AP)."""
    config = ScenarioConfig(
        n_stations=6,
        n_aps=1,
        duration_s=8.0,
        seed=42,
        uplink=ConstantRate(12.0),
        downlink=ConstantRate(14.0),
        obstructed_fraction=0.2,
    )
    return run_scenario(config)
