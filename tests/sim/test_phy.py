"""Tests for the 802.11b PHY model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frames import FrameType
from repro.sim import PhyModel

phy = PhyModel()


class TestDurations:
    """Control durations must reproduce the paper's Table 2."""

    def test_rts_352(self):
        assert phy.control_duration_us(FrameType.RTS) == 352

    def test_cts_ack_beacon_304(self):
        for ftype in (FrameType.CTS, FrameType.ACK, FrameType.BEACON):
            assert phy.control_duration_us(ftype) == 304

    def test_data_duration(self):
        assert phy.data_duration_us(1500, 11.0) == round(192 + 8 * 1534 / 11.0)

    def test_frame_duration_dispatch(self):
        assert phy.frame_duration_us(FrameType.DATA, 100, 2.0) == round(
            192 + 8 * 134 / 2.0
        )
        assert phy.frame_duration_us(FrameType.ACK, 0, 1.0) == 304

    def test_data_is_not_fixed_duration(self):
        with pytest.raises(ValueError):
            phy.control_duration_us(FrameType.DATA)


class TestErrorModel:
    def test_ber_decreases_with_snr(self):
        bers = [phy.bit_error_rate(snr, 11.0) for snr in (0.0, 5.0, 10.0, 15.0)]
        assert bers == sorted(bers, reverse=True)

    def test_slower_rates_more_robust(self):
        """At any SNR the processing-gain ladder orders the BERs."""
        for snr in (-2.0, 3.0, 8.0):
            bers = [phy.bit_error_rate(snr, r) for r in (1.0, 2.0, 5.5, 11.0)]
            assert bers == sorted(bers)

    def test_unknown_rate_rejected(self):
        with pytest.raises(ValueError):
            phy.bit_error_rate(10.0, 54.0)

    def test_success_probability_decreases_with_size(self):
        p_small = phy.frame_success_probability(6.0, 100, 11.0)
        p_large = phy.frame_success_probability(6.0, 1500, 11.0)
        assert p_small > p_large

    def test_high_snr_is_clean(self):
        assert phy.frame_success_probability(25.0, 1500, 11.0) > 0.999

    def test_low_snr_kills_11mbps_but_not_1mbps(self):
        """The sensitivity ladder the rate-adaptation story rests on."""
        snr = 4.0
        assert phy.frame_success_probability(snr, 1000, 11.0) < 0.01
        assert phy.frame_success_probability(snr, 1000, 1.0) > 0.99

    def test_control_success_probability(self):
        assert phy.control_success_probability(15.0, FrameType.ACK) > 0.999
        low = phy.control_success_probability(-8.0, FrameType.ACK)
        assert low < 0.9


class TestBestRate:
    def test_high_snr_picks_11(self):
        assert phy.best_rate_for_snr(25.0) == 11.0

    def test_low_snr_picks_1(self):
        assert phy.best_rate_for_snr(2.0) == 1.0

    def test_monotone_in_snr(self):
        rates = [phy.best_rate_for_snr(snr) for snr in range(-2, 26)]
        assert rates == sorted(rates)

    def test_fallback_when_nothing_qualifies(self):
        assert phy.best_rate_for_snr(-20.0) == 1.0


@given(
    snr=st.floats(min_value=-10.0, max_value=40.0),
    size=st.integers(min_value=0, max_value=2000),
    rate=st.sampled_from([1.0, 2.0, 5.5, 11.0]),
)
def test_success_probability_is_a_probability(snr, size, rate):
    p = phy.frame_success_probability(snr, size, rate)
    assert 0.0 <= p <= 1.0
