"""Tests for the vicinity-sniffer capture model (paper §4.2/§4.4)."""

import numpy as np
import pytest

from repro.frames import FrameType
from repro.sim import (
    Medium,
    PhyModel,
    Position,
    PropagationModel,
    SimFrame,
    Sniffer,
    SnifferConfig,
    Simulator,
    ground_truth_trace,
)

from .test_medium import RecordingListener, _frame


def _setup(sniffer_config=None, seed=5):
    sim = Simulator()
    medium = Medium(
        sim,
        PropagationModel(shadowing_sigma_db=0.0),
        PhyModel(),
        rng=np.random.default_rng(seed),
    )
    sniffer = Sniffer(
        sim,
        medium,
        node_id=60000,
        position=Position(5, 5),
        channel=1,
        rng=np.random.default_rng(seed + 1),
        config=sniffer_config or SnifferConfig(drop_floor=0.0, drop_per_frame=0.0),
    )
    return sim, medium, sniffer


class TestCapture:
    def test_nearby_frames_captured_with_metadata(self):
        sim, medium, sniffer = _setup()
        tx = RecordingListener(1, Position(0, 0))
        medium.attach(tx)
        frame = _frame(1, 2, size=800, rate=5.5)
        frame.seq = 42
        frame.retry = True
        medium.transmit(tx, frame, 15.0)
        sim.run_until(1_000_000)
        trace = sniffer.to_trace()
        assert len(trace) == 1
        row = trace.row(0)
        assert row.size == 800
        assert row.rate_mbps == 5.5
        assert row.seq == 42
        assert row.retry
        assert row.snr_db > 10
        assert row.channel == 1

    def test_timestamp_is_frame_start(self):
        sim, medium, sniffer = _setup()
        tx = RecordingListener(1, Position(0, 0))
        medium.attach(tx)
        sim.run_until(7_777)
        frame = _frame(1, 2, size=500, rate=11.0)
        medium.transmit(tx, frame, 15.0)
        sim.run_until(1_000_000)
        assert sniffer.to_trace().row(0).time_us == 7_777

    def test_distant_transmitter_hidden(self):
        sim, medium, sniffer = _setup()
        far = RecordingListener(1, Position(4000, 4000))
        medium.attach(far)
        medium.transmit(far, _frame(1, 2), 15.0)
        sim.run_until(1_000_000)
        assert sniffer.frames_captured == 0

    def test_other_channel_ignored(self):
        sim, medium, sniffer = _setup()
        tx = RecordingListener(1, Position(0, 0), channel=6)
        medium.attach(tx)
        medium.transmit(tx, _frame(1, 2, channel=6), 15.0)
        sim.run_until(1_000_000)
        assert sniffer.frames_captured == 0


class TestHardwareDrops:
    def test_high_drop_config_loses_frames(self):
        config = SnifferConfig(drop_floor=1.0, drop_per_frame=0.0, drop_ceiling=1.0)
        sim, medium, sniffer = _setup(sniffer_config=config)
        tx = RecordingListener(1, Position(0, 0))
        medium.attach(tx)
        for i in range(10):
            medium.transmit(tx, _frame(1, 2, size=100), 15.0)
            sim.run_until(sim.now_us + 10_000)
        sim.run_until(10_000_000)
        assert sniffer.frames_captured == 0
        assert sniffer.hardware_drops == 10

    def test_load_dependent_drops(self):
        """Drop rate grows with capture load (Yeo et al. behaviour)."""
        config = SnifferConfig(drop_floor=0.0, drop_per_frame=0.01, drop_ceiling=0.9)
        sim, medium, sniffer = _setup(sniffer_config=config)
        tx = RecordingListener(1, Position(0, 0))
        medium.attach(tx)
        for i in range(300):
            medium.transmit(tx, _frame(1, 2, size=60), 15.0)
            sim.run_until(sim.now_us + 700)
        sim.run_until(10_000_000)
        assert sniffer.hardware_drops > 0
        assert sniffer.frames_captured > 0


class TestGroundTruth:
    def test_ground_truth_trace_complete_and_sorted(self):
        sim, medium, sniffer = _setup()
        tx = RecordingListener(1, Position(0, 0))
        medium.attach(tx)
        for i in range(5):
            medium.transmit(tx, _frame(1, 2, size=100 + i), 15.0)
            sim.run_until(sim.now_us + 5_000)
        sim.run_until(1_000_000)
        truth = ground_truth_trace(medium)
        assert len(truth) == 5
        assert truth.is_time_sorted()
        assert list(truth.size) == [100, 101, 102, 103, 104]

    def test_capture_subset_of_ground_truth(self):
        config = SnifferConfig(drop_floor=0.3, drop_per_frame=0.0)
        sim, medium, sniffer = _setup(sniffer_config=config)
        tx = RecordingListener(1, Position(0, 0))
        medium.attach(tx)
        for _ in range(100):
            medium.transmit(tx, _frame(1, 2, size=100), 15.0)
            sim.run_until(sim.now_us + 3_000)
        sim.run_until(10_000_000)
        assert sniffer.frames_captured < len(ground_truth_trace(medium))

    def test_recording_gate_keeps_counters_only(self):
        """record_ground_truth=False: no frame list, counters intact."""
        sim, medium, sniffer = _setup()
        medium.record_ground_truth = False
        tx = RecordingListener(1, Position(0, 0))
        medium.attach(tx)
        for _ in range(4):
            medium.transmit(tx, _frame(1, 2, size=100), 15.0)
            sim.run_until(sim.now_us + 5_000)
        sim.run_until(1_000_000)
        assert medium.ground_truth == []
        assert medium.frames_transmitted == 4
        assert medium.channel_tx_counts == {1: 4}


class TestDrain:
    def _capture_n(self, n, gap_us=5_000):
        sim, medium, sniffer = _setup()
        tx = RecordingListener(1, Position(0, 0))
        medium.attach(tx)
        for i in range(n):
            medium.transmit(tx, _frame(1, 2, size=100 + i), 15.0)
            sim.run_until(sim.now_us + gap_us)
        sim.run_until(1_000_000)
        return sniffer

    def test_drain_all_empties_buffer_keeps_totals(self):
        sniffer = self._capture_n(5)
        full = sniffer.to_trace()
        drained = sniffer.drain_trace()
        assert drained == full
        assert sniffer.frames_buffered == 0
        assert sniffer.frames_captured == 5      # monotone total
        assert len(sniffer.to_trace()) == 0

    def test_partial_drain_splits_at_watermark(self):
        sniffer = self._capture_n(5, gap_us=5_000)
        full = sniffer.to_trace()
        cut = int(full.time_us[2])  # strictly-before semantics
        early = sniffer.drain_trace(before_us=cut)
        assert list(early.time_us) == list(full.time_us[:2])
        assert sniffer.frames_buffered == 3
        late = sniffer.drain_trace()
        assert list(late.time_us) == list(full.time_us[2:])
        # Recombined, nothing lost and metadata intact.
        assert list(early.size) + list(late.size) == list(full.size)

    def test_drain_preserves_all_columns(self):
        sniffer = self._capture_n(4)
        full = sniffer.to_trace()
        part1 = sniffer.drain_trace(before_us=int(full.time_us[2]))
        part2 = sniffer.drain_trace()
        from repro.frames import Trace

        assert Trace.concatenate([part1, part2]) == full

    def test_drain_empty_buffer(self):
        sim, medium, sniffer = _setup()
        assert len(sniffer.drain_trace()) == 0
        assert len(sniffer.drain_trace(before_us=1_000)) == 0

    def test_boundary_timestamp_drained_exactly_once(self):
        """A frame whose timestamp *equals* the watermark is kept by that
        drain and returned by the next one — once, never twice or zero
        times across consecutive drains."""
        sniffer = self._capture_n(3, gap_us=5_000)
        full = sniffer.to_trace()
        boundary = int(full.time_us[1])

        first = sniffer.drain_trace(before_us=boundary)
        # Strictly-exclusive watermark: the boundary row is NOT drained.
        assert list(first.time_us) == list(full.time_us[:1])
        assert boundary not in list(first.time_us)
        assert sniffer.frames_buffered == 2

        # Re-draining at the same watermark drains nothing (no dupes).
        again = sniffer.drain_trace(before_us=boundary)
        assert len(again) == 0
        assert sniffer.frames_buffered == 2

        # The first later watermark picks the boundary row up, once.
        second = sniffer.drain_trace(before_us=boundary + 1)
        assert list(second.time_us) == [boundary]
        rest = sniffer.drain_trace()
        assert boundary not in list(rest.time_us)
        # Nothing lost, nothing duplicated across the four drains.
        from repro.frames import Trace

        assert Trace.concatenate([first, again, second, rest]) == full
        assert sniffer.frames_buffered == 0

    def test_equal_timestamps_at_boundary_drain_together(self):
        """Several rows sharing the watermark timestamp all stay, then
        all drain together in the next window."""
        sim, medium, sniffer = _setup()
        frame = _frame(1, 2, size=100)
        # Direct record: equal capture timestamps cannot be produced via
        # the medium (same-channel transmissions serialize), but drained
        # streams must still handle them — e.g. identical-duration
        # frames on different channels merged downstream.
        t0 = 10_000 + frame.duration_us
        sniffer._record(t0, frame, 20.0)
        sniffer._record(t0, frame, 21.0)
        sniffer._record(t0 + 500 + frame.duration_us, frame, 22.0)
        boundary = 10_000
        assert len(sniffer.drain_trace(before_us=boundary)) == 0
        both = sniffer.drain_trace(before_us=boundary + 1)
        assert list(both.time_us) == [boundary, boundary]
        assert sniffer.frames_buffered == 1
