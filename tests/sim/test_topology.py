"""Tests for room topology helpers."""

import numpy as np
import pytest

from repro.sim import place_aps, place_stations, sniffer_position


class TestPlacement:
    def test_aps_evenly_spaced_on_centre_line(self):
        positions = place_aps(3, width_m=40.0, depth_m=20.0)
        assert len(positions) == 3
        assert all(p.y == 10.0 for p in positions)
        xs = [p.x for p in positions]
        assert xs == sorted(xs)
        gaps = np.diff(xs)
        assert np.allclose(gaps, gaps[0])

    def test_single_ap_centred(self):
        (pos,) = place_aps(1, 30.0, 20.0)
        assert pos.x == pytest.approx(15.0)

    def test_zero_aps_rejected(self):
        with pytest.raises(ValueError):
            place_aps(0, 10.0, 10.0)

    def test_stations_inside_room(self):
        rng = np.random.default_rng(4)
        positions = place_stations(50, 30.0, 20.0, rng, margin_m=1.0)
        assert len(positions) == 50
        assert all(1.0 <= p.x <= 29.0 for p in positions)
        assert all(1.0 <= p.y <= 19.0 for p in positions)

    def test_sniffer_centered(self):
        pos = sniffer_position(40.0, 20.0)
        assert (pos.x, pos.y) == (20.0, 10.0)
