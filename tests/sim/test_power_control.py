"""Tests for transmit power control (the paper's §7 recommendation)."""

import pytest

from repro.sim import PowerControlConfig, TransmitPowerControl


class TestController:
    def test_default_power_before_feedback(self):
        tpc = TransmitPowerControl(base_power_dbm=12.0)
        assert tpc.power_for(1) == 12.0

    def test_low_snr_raises_power(self):
        tpc = TransmitPowerControl(base_power_dbm=12.0)
        tpc.on_feedback_snr(1, 5.0)  # 9 dB below the 14 dB target
        assert tpc.power_for(1) > 12.0

    def test_high_snr_lowers_power(self):
        tpc = TransmitPowerControl(base_power_dbm=12.0)
        tpc.on_feedback_snr(1, 30.0)
        assert tpc.power_for(1) < 12.0

    def test_step_limited(self):
        config = PowerControlConfig(step_limit_db=3.0)
        tpc = TransmitPowerControl(base_power_dbm=12.0, config=config)
        tpc.on_feedback_snr(1, -20.0)  # huge deficit
        assert tpc.power_for(1) == pytest.approx(15.0)

    def test_bounded_by_cap(self):
        config = PowerControlConfig(max_power_dbm=14.0, step_limit_db=10.0)
        tpc = TransmitPowerControl(base_power_dbm=12.0, config=config)
        for _ in range(5):
            tpc.on_feedback_snr(1, 0.0)
        assert tpc.power_for(1) == 14.0

    def test_bounded_by_floor(self):
        config = PowerControlConfig(min_power_dbm=10.0, step_limit_db=10.0)
        tpc = TransmitPowerControl(base_power_dbm=12.0, config=config)
        for _ in range(5):
            tpc.on_feedback_snr(1, 40.0)
        assert tpc.power_for(1) == 10.0

    def test_links_independent(self):
        tpc = TransmitPowerControl(base_power_dbm=12.0)
        tpc.on_feedback_snr(1, 2.0)
        assert tpc.power_for(2) == 12.0

    def test_reset(self):
        tpc = TransmitPowerControl(base_power_dbm=12.0)
        tpc.on_feedback_snr(1, 2.0)
        tpc.reset(1)
        assert tpc.power_for(1) == 12.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PowerControlConfig(min_power_dbm=20.0, max_power_dbm=10.0)
        with pytest.raises(ValueError):
            PowerControlConfig(ewma_alpha=0.0)


class TestInScenario:
    def test_tpc_raises_obstructed_station_rates(self):
        """With TPC on, obstructed stations climb back up the rate
        ladder (the §7 claim: change power so frames stay at high
        rates) — their delivered traffic shifts away from 1-2 Mbps."""
        from repro.frames import FrameType
        from repro.sim import ConstantRate, ScenarioConfig, run_scenario
        import numpy as np

        def run(tpc: bool):
            config = ScenarioConfig(
                n_stations=8,
                duration_s=10.0,
                seed=61,
                room_width_m=36.0,
                room_depth_m=24.0,
                shadowing_sigma_db=6.0,
                path_loss_exponent=3.2,
                station_tx_power_dbm=12.0,
                obstructed_fraction=0.25,
                power_control=tpc,
                uplink=ConstantRate(10.0),
                downlink=ConstantRate(2.0),
            )
            result = run_scenario(config)
            truth = result.ground_truth
            obstructed = set(result.medium.propagation.node_extra_loss_db)
            data = truth.only_type(FrameType.DATA)
            from_obstructed = np.isin(data.src, sorted(obstructed))
            if not from_obstructed.any():
                return float("nan")
            return float(np.mean(data.rate_mbps[from_obstructed]))

        assert run(True) > run(False)
