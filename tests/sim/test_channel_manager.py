"""Tests for dynamic channel management (paper §4.1)."""

import numpy as np
import pytest

from repro.sim import (
    ChannelManager,
    ChannelManagerConfig,
    ConstantRate,
    ScenarioConfig,
    run_scenario,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelManagerConfig(interval_us=0)
        with pytest.raises(ValueError):
            ChannelManagerConfig(imbalance_ratio=0.5)


def _crowded_config(channel_management: bool, seed: int = 71) -> ScenarioConfig:
    """Three APs on two channels: channel 1 starts with two APs and
    therefore roughly double the traffic — the rebalancing case."""
    return ScenarioConfig(
        n_stations=9,
        n_aps=3,
        channels=(1, 6),
        duration_s=30.0,
        seed=seed,
        room_width_m=40.0,
        room_depth_m=24.0,
        uplink=ConstantRate(8.0),
        downlink=ConstantRate(8.0),
        channel_management=channel_management,
    )


class TestRebalancing:
    def test_overloaded_channel_sheds_an_ap(self):
        result = run_scenario(_crowded_config(channel_management=True))
        manager = result.channel_manager
        assert manager is not None
        assert len(manager.switches) >= 1
        switch = manager.switches[0]
        assert switch.old_channel != switch.new_channel
        # After the dust settles, no channel hosts all three APs.
        per_channel = {ch: 0 for ch in (1, 6)}
        for ap in result.aps:
            per_channel[ap.channel] += 1
        assert max(per_channel.values()) <= 2

    def test_stations_follow_their_ap(self):
        result = run_scenario(_crowded_config(channel_management=True))
        for station in result.stations:
            ap = next(a for a in result.aps if a.node_id == station.ap_id)
            assert station.mac.channel == ap.mac.channel

    def test_disabled_by_default(self):
        result = run_scenario(_crowded_config(channel_management=False))
        assert result.channel_manager is None
        # All APs keep their round-robin assignment.
        assert [ap.channel for ap in result.aps] == [1, 6, 1]

    def test_cooldown_limits_flapping(self):
        result = run_scenario(_crowded_config(channel_management=True))
        manager = result.channel_manager
        switch_times = {}
        for switch in manager.switches:
            times = switch_times.setdefault(switch.ap_id, [])
            if times:
                assert switch.time_us - times[-1] >= manager.config.cooldown_us
            times.append(switch.time_us)

    def test_traffic_continues_after_switch(self):
        """The network keeps delivering after a reassignment."""
        result = run_scenario(_crowded_config(channel_management=True))
        manager = result.channel_manager
        if not manager.switches:
            pytest.skip("no switch occurred at this seed")
        t_switch = manager.switches[0].time_us
        after = result.ground_truth.between(
            t_switch, int(result.config.duration_us)
        )
        assert len(after) > 100
