"""Tests for the shared medium: sensing, collisions, capture, delivery."""

import numpy as np
import pytest

from repro.frames import FrameType
from repro.sim import Medium, PhyModel, Position, PropagationModel, SimFrame, Simulator


class RecordingListener:
    """Minimal medium listener that logs its callbacks."""

    def __init__(self, node_id, position, channel=1, sense=-85.0):
        self.node_id = node_id
        self.position = position
        self.channel = channel
        self.sense_threshold_dbm = sense
        self.busy_events = 0
        self.idle_events = 0
        self.received = []

    def on_medium_busy(self):
        self.busy_events += 1

    def on_medium_idle(self):
        self.idle_events += 1

    def on_frame_received(self, frame, snr_db):
        self.received.append((frame, snr_db))


def _make_medium(seed=1, shadowing=0.0):
    sim = Simulator()
    medium = Medium(
        sim,
        PropagationModel(shadowing_sigma_db=shadowing),
        PhyModel(),
        rng=np.random.default_rng(seed),
    )
    return sim, medium


def _frame(src, dst, size=500, rate=11.0, channel=1, ftype=FrameType.DATA):
    return SimFrame(ftype=ftype, src=src, dst=dst, size=size, rate_mbps=rate, channel=channel)


class TestDelivery:
    def test_clean_frame_delivered_to_all_listeners(self):
        sim, medium = _make_medium()
        tx = RecordingListener(1, Position(0, 0))
        rx = RecordingListener(2, Position(5, 0))
        overhear = RecordingListener(3, Position(3, 3))
        for node in (tx, rx, overhear):
            medium.attach(node)
        medium.transmit(tx, _frame(1, 2), tx_power_dbm=15.0)
        sim.run_until(10_000)
        assert len(rx.received) == 1
        assert len(overhear.received) == 1
        assert len(tx.received) == 0  # no self-reception
        frame, snr = rx.received[0]
        assert frame.src == 1 and snr > 20

    def test_out_of_range_listener_hears_nothing(self):
        sim, medium = _make_medium()
        tx = RecordingListener(1, Position(0, 0))
        hidden = RecordingListener(2, Position(5000, 0))
        medium.attach(tx)
        medium.attach(hidden)
        medium.transmit(tx, _frame(1, 2), tx_power_dbm=15.0)
        sim.run_until(10_000)
        assert hidden.received == []
        assert hidden.busy_events == 0  # below sense threshold: hidden terminal

    def test_cross_channel_isolation(self):
        sim, medium = _make_medium()
        tx = RecordingListener(1, Position(0, 0), channel=1)
        other = RecordingListener(2, Position(1, 0), channel=6)
        medium.attach(tx)
        medium.attach(other)
        medium.transmit(tx, _frame(1, 2, channel=1), tx_power_dbm=15.0)
        sim.run_until(10_000)
        assert other.received == []
        assert other.busy_events == 0

    def test_duration_filled_from_phy(self):
        sim, medium = _make_medium()
        tx = RecordingListener(1, Position(0, 0))
        medium.attach(tx)
        frame = _frame(1, 2, size=1500, rate=11.0)
        medium.transmit(tx, frame, 15.0)
        assert frame.duration_us == round(192 + 8 * 1534 / 11.0)


class TestCarrierSense:
    def test_busy_idle_transitions(self):
        sim, medium = _make_medium()
        tx = RecordingListener(1, Position(0, 0))
        nearby = RecordingListener(2, Position(4, 0))
        medium.attach(tx)
        medium.attach(nearby)
        medium.transmit(tx, _frame(1, 2), 15.0)
        assert not medium.is_idle(nearby)
        assert nearby.busy_events == 1
        sim.run_until(1_000_000)
        assert medium.is_idle(nearby)
        assert nearby.idle_events == 1

    def test_overlapping_transmissions_single_busy_period(self):
        sim, medium = _make_medium()
        a = RecordingListener(1, Position(0, 0))
        b = RecordingListener(2, Position(2, 0))
        listener = RecordingListener(3, Position(1, 0))
        for node in (a, b, listener):
            medium.attach(node)
        medium.transmit(a, _frame(1, 3, size=1500, rate=1.0), 15.0)
        sim.run_until(100)
        medium.transmit(b, _frame(2, 3, size=1500, rate=1.0), 15.0)
        sim.run_until(1_000_000)
        # One busy onset (second tx arrived while already busy), one idle.
        assert listener.busy_events == 1
        assert listener.idle_events == 1


class TestCollisions:
    def test_equal_power_collision_destroys_both(self):
        sim, medium = _make_medium()
        a = RecordingListener(1, Position(0, 0))
        b = RecordingListener(2, Position(10, 0))
        rx = RecordingListener(3, Position(5, 0))  # equidistant: SIR ~ 0 dB
        for node in (a, b, rx):
            medium.attach(node)
        medium.transmit(a, _frame(1, 3, size=1400, rate=11.0), 15.0)
        medium.transmit(b, _frame(2, 3, size=1400, rate=11.0), 15.0)
        sim.run_until(1_000_000)
        assert rx.received == []

    def test_capture_effect_saves_strong_frame(self):
        sim, medium = _make_medium()
        strong = RecordingListener(1, Position(1, 0))
        weak = RecordingListener(2, Position(60, 0))
        rx = RecordingListener(3, Position(0, 0))
        for node in (strong, weak, rx):
            medium.attach(node)
        medium.transmit(strong, _frame(1, 3, size=500, rate=1.0), 18.0)
        medium.transmit(weak, _frame(2, 3, size=500, rate=1.0), 8.0)
        sim.run_until(1_000_000)
        received_srcs = {f.src for f, _ in rx.received}
        assert 1 in received_srcs   # strong survives (capture)
        assert 2 not in received_srcs

    def test_ground_truth_records_everything(self):
        sim, medium = _make_medium()
        tx = RecordingListener(1, Position(0, 0))
        medium.attach(tx)
        medium.transmit(tx, _frame(1, 2), 15.0)
        sim.run_until(100)
        medium.transmit(tx, _frame(1, 2), 15.0)
        sim.run_until(1_000_000)
        assert len(medium.ground_truth) == 2
        assert medium.frames_transmitted == 2


class TestDeliveryPlans:
    """The cached audibility/delivery plans and their invalidation."""

    def test_repeat_transmissions_reuse_plan(self):
        sim, medium = _make_medium()
        tx = RecordingListener(1, Position(0, 0))
        rx = RecordingListener(2, Position(5, 0))
        medium.attach(tx)
        medium.attach(rx)
        medium.transmit(tx, _frame(1, 2), 15.0)
        sim.run_all()
        assert len(medium._plans) == 1
        medium.transmit(tx, _frame(1, 2), 15.0)
        sim.run_all()
        assert len(medium._plans) == 1
        assert len(rx.received) == 2

    def test_notify_topology_changed_invalidates(self):
        sim, medium = _make_medium()
        tx = RecordingListener(1, Position(0, 0))
        rx = RecordingListener(2, Position(5, 0))
        medium.attach(tx)
        medium.attach(rx)
        medium.transmit(tx, _frame(1, 2), 15.0)
        sim.run_all()
        assert len(rx.received) == 1
        # Re-target the receiver's channel; a bare attribute write on an
        # ad-hoc listener must be announced to the medium.
        rx.channel = 6
        medium.notify_topology_changed()
        medium.transmit(tx, _frame(1, 2, channel=1), 15.0)
        sim.run_all()
        assert len(rx.received) == 1  # cross-channel now: nothing new

    def test_attach_mid_flight_falls_back_to_dynamic_delivery(self):
        """A listener attached while a frame is in the air still receives
        it — exactly what the uncached per-finish loop always did."""
        sim, medium = _make_medium()
        tx = RecordingListener(1, Position(0, 0))
        early = RecordingListener(2, Position(5, 0))
        medium.attach(tx)
        medium.attach(early)
        medium.transmit(tx, _frame(1, 2), 15.0)
        late = RecordingListener(3, Position(6, 0))
        medium.attach(late)  # bumps the plan epoch mid-flight
        sim.run_all()
        assert len(early.received) == 1
        assert len(late.received) == 1

    def test_dcf_channel_property_announces_change(self):
        import repro.sim.dcf as dcf
        from repro.sim.rate_adaptation import FixedRate

        sim, medium = _make_medium()
        mac = dcf.DcfMac(
            sim=sim,
            medium=medium,
            phy=PhyModel(),
            node_id=7,
            position=Position(1, 1),
            channel=1,
            rng=np.random.default_rng(3),
            rate_adaptation=FixedRate(11.0),
        )
        epoch = medium._plan_epoch
        mac.channel = 6
        assert mac.channel == 6
        assert medium._plan_epoch == epoch + 1

    def test_passive_listener_skips_sense_bookkeeping(self):
        sim, medium = _make_medium()
        tx = RecordingListener(1, Position(0, 0))
        passive = RecordingListener(2, Position(5, 0))
        passive.medium_passive = True
        medium.attach(tx)
        medium.attach(passive)
        medium.transmit(tx, _frame(1, 2), 15.0)
        assert medium.is_idle(passive)  # no sensed entries are tracked
        sim.run_all()
        assert passive.busy_events == 0
        assert passive.idle_events == 0
        assert len(passive.received) == 1  # reception is unaffected
