"""Tests for the DCF MAC state machine."""

import numpy as np
import pytest

from repro.frames import BROADCAST, FrameType
from repro.sim import (
    DcfMac,
    FixedRate,
    MacConfig,
    Medium,
    PhyModel,
    Position,
    PropagationModel,
    SimFrame,
    Simulator,
)


def _pair(seed=3, distance=5.0, config=None, config_b=None, shadowing=0.0):
    """Two MACs on a clean channel."""
    sim = Simulator()
    medium = Medium(
        sim,
        PropagationModel(shadowing_sigma_db=shadowing),
        PhyModel(),
        rng=np.random.default_rng(seed),
    )
    phy = PhyModel()
    a = DcfMac(
        sim, medium, phy, node_id=1, position=Position(0, 0), channel=1,
        rng=np.random.default_rng(seed + 1), config=config or MacConfig(),
        rate_adaptation=FixedRate(11.0),
    )
    b = DcfMac(
        sim, medium, phy, node_id=2, position=Position(distance, 0), channel=1,
        rng=np.random.default_rng(seed + 2), config=config_b or config or MacConfig(),
        rate_adaptation=FixedRate(11.0),
    )
    return sim, medium, a, b


class TestBasicExchange:
    def test_data_ack_exchange(self):
        sim, medium, a, b = _pair()
        a.enqueue(2, 1000)
        sim.run_until(1_000_000)
        assert a.stats.data_attempts == 1
        assert a.stats.data_successes == 1
        assert b.stats.delivered_frames == 1
        assert b.stats.delivered_bytes == 1000
        kinds = [frame.ftype for _, frame in medium.ground_truth]
        assert kinds == [FrameType.DATA, FrameType.ACK]

    def test_queue_drains_in_order(self):
        sim, medium, a, b = _pair()
        for size in (100, 200, 300):
            a.enqueue(2, size)
        sim.run_until(1_000_000)
        delivered = [
            frame.size for _, frame in medium.ground_truth
            if frame.ftype == FrameType.DATA
        ]
        assert delivered == [100, 200, 300]
        assert a.stats.data_successes == 3

    def test_queue_overflow(self):
        config = MacConfig(queue_limit=2)
        sim, medium, a, b = _pair(config=config)
        accepted = [a.enqueue(2, 100) for _ in range(5)]
        # First is dequeued for service immediately; two more fit the queue.
        assert accepted.count(False) >= 1
        assert a.stats.queue_overflows >= 1

    def test_broadcast_not_acked(self):
        sim, medium, a, b = _pair()
        a.enqueue(BROADCAST, 80, FrameType.BEACON)
        sim.run_until(1_000_000)
        kinds = [frame.ftype for _, frame in medium.ground_truth]
        assert kinds == [FrameType.BEACON]

    def test_data_delivered_callback(self):
        sim, medium, a, b = _pair()
        got = []
        b.on_data_delivered = got.append
        a.enqueue(2, 777)
        sim.run_until(1_000_000)
        assert len(got) == 1 and got[0].size == 777


class TestRetries:
    def test_unreachable_peer_retries_then_drops(self):
        """A peer 5 km away never ACKs: retry_limit attempts then drop."""
        config = MacConfig(retry_limit=3)
        sim, medium, a, b = _pair(distance=5000.0, config=config)
        a.enqueue(2, 1000)
        sim.run_until(5_000_000)
        assert a.stats.data_attempts == 4  # 1 + 3 retries
        assert a.stats.data_successes == 0
        assert a.stats.data_drops == 1

    def test_retry_bit_set_on_retransmissions(self):
        config = MacConfig(retry_limit=2)
        sim, medium, a, b = _pair(distance=5000.0, config=config)
        a.enqueue(2, 500)
        sim.run_until(5_000_000)
        retries = [frame.retry for _, frame in medium.ground_truth]
        assert retries == [False, True, True]
        seqs = {frame.seq for _, frame in medium.ground_truth}
        assert len(seqs) == 1  # retries reuse the sequence number

    def test_next_packet_after_drop(self):
        config = MacConfig(retry_limit=1)
        sim, medium, a, b = _pair(distance=5000.0, config=config)
        a.enqueue(2, 500)
        a.enqueue(2, 600)
        sim.run_until(5_000_000)
        assert a.stats.data_drops == 2
        sizes = {frame.size for _, frame in medium.ground_truth}
        assert sizes == {500, 600}


class TestRtsCts:
    def test_full_handshake_sequence(self):
        config = MacConfig(rts_threshold=500)
        sim, medium, a, b = _pair(config=config, config_b=MacConfig())
        a.enqueue(2, 1000)
        sim.run_until(1_000_000)
        kinds = [frame.ftype for _, frame in medium.ground_truth]
        assert kinds == [FrameType.RTS, FrameType.CTS, FrameType.DATA, FrameType.ACK]
        assert a.stats.rts_attempts == 1
        assert a.stats.cts_received == 1
        assert a.stats.data_successes == 1

    def test_small_frames_skip_rts(self):
        config = MacConfig(rts_threshold=500)
        sim, medium, a, b = _pair(config=config)
        a.enqueue(2, 100)
        sim.run_until(1_000_000)
        kinds = [frame.ftype for _, frame in medium.ground_truth]
        assert kinds == [FrameType.DATA, FrameType.ACK]

    def test_rts_timeout_retries(self):
        config = MacConfig(rts_threshold=0, retry_limit=2)
        sim, medium, a, b = _pair(distance=5000.0, config=config)
        a.enqueue(2, 1000)
        sim.run_until(5_000_000)
        assert a.stats.rts_attempts == 3
        assert a.stats.data_drops == 1
        # No DATA ever sent: handshake never completed.
        assert all(
            frame.ftype == FrameType.RTS for _, frame in medium.ground_truth
        )


class TestTimingFidelity:
    def test_ack_follows_data_by_sifs(self):
        sim, medium, a, b = _pair()
        a.enqueue(2, 1000)
        sim.run_until(1_000_000)
        (t_data, data_frame), (t_ack, _) = medium.ground_truth
        data_end = t_data + data_frame.duration_us
        assert t_ack - data_end == 10  # SIFS

    def test_difs_plus_backoff_before_transmission(self):
        sim, medium, a, b = _pair()
        a.enqueue(2, 1000)
        sim.run_until(1_000_000)
        t_data, _ = medium.ground_truth[0]
        # At least DIFS; at most DIFS + CWmin slots.
        assert 50 <= t_data <= 50 + 31 * 20

    def test_two_contenders_serialise(self):
        """Carrier sense: concurrent senders do not overlap (usually)."""
        sim, medium, a, b = _pair(seed=9)
        a.enqueue(2, 1400)
        b.enqueue(1, 1400)
        sim.run_until(1_000_000)
        spans = [
            (t, t + f.duration_us)
            for t, f in medium.ground_truth
            if f.ftype == FrameType.DATA
        ]
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert s2 >= e1  # no overlap between data frames


class TestBackoffBatching:
    """Batched backoff draws must be stream-identical to scalar draws."""

    def _observed_and_reference(self, seed, bounds):
        """Draw through the MAC (batched) and a fresh RNG (scalar)."""
        _, _, a, _ = _pair(seed=seed)
        observed = []
        for bound in bounds:
            a._cw = bound - 1
            a._draw_backoff()
            observed.append(a._backoff_slots)
        reference_rng = np.random.default_rng(seed + 1)  # _pair wires seed+1
        reference = [int(reference_rng.integers(0, b)) for b in bounds]
        return observed, reference

    def test_constant_window_matches_scalar_stream(self):
        bounds = [32] * 100
        observed, reference = self._observed_and_reference(3, bounds)
        assert observed == reference

    def test_window_changes_mid_batch_match_scalar_stream(self):
        # Collisions double cw (forcing a rewind-and-replay of the
        # speculative batch) and successes reset it; the observed draws
        # must still equal a pure scalar draw-per-call sequence.
        bounds = (
            [32] * 5 + [64] * 3 + [128] * 2 + [32] * 40 + [64] * 1 + [32] * 20
        )
        observed, reference = self._observed_and_reference(9, bounds)
        assert observed == reference

    def test_draws_stay_within_window(self):
        _, _, a, _ = _pair(seed=5)
        for _ in range(200):
            a._draw_backoff()
            assert 0 <= a._backoff_slots <= a._cw
