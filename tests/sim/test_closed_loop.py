"""Tests for the closed-loop (TCP-like) traffic source."""

import numpy as np
import pytest

from repro.frames import FrameType
from repro.sim import ClosedLoopSource, MacConfig, uniform_sizes

from .test_dcf import _pair


def _source(mac, window=2, total=None, think=0, dst=2, seed=9):
    return ClosedLoopSource(
        mac=mac,
        dst=dst,
        sizes=uniform_sizes(500, 500),
        rng=np.random.default_rng(seed),
        window=window,
        think_time_us=think,
        total_msdus=total,
    )


class TestWindowing:
    def test_completions_release_new_msdus(self):
        sim, medium, a, b = _pair()
        source = _source(a.mac if hasattr(a, "mac") else a, window=2)
        sim.run_until(2_000_000)
        assert source.completed > 2
        assert source.delivered == source.completed  # clean channel
        # Conservation: everything sent either completed or is in flight.
        assert source.sent - source.completed <= source.window

    def test_total_msdus_bounds_the_transfer(self):
        sim, medium, a, b = _pair()
        source = _source(a, window=3, total=7)
        sim.run_until(5_000_000)
        assert source.sent == 7
        assert source.completed == 7
        data = [f for _, f in medium.ground_truth if f.ftype == FrameType.DATA]
        assert len(data) == 7

    def test_drops_release_the_window_too(self):
        config = MacConfig(retry_limit=1)
        sim, medium, a, b = _pair(distance=5000.0, config=config)
        source = _source(a, window=2, total=4)
        sim.run_until(10_000_000)
        assert source.completed == 4
        assert source.delivered == 0

    def test_think_time_paces_injections(self):
        sim, medium, a, b = _pair()
        fast_src = _source(a, window=1, think=0)
        sim.run_until(2_000_000)
        fast = fast_src.completed

        sim2, medium2, a2, b2 = _pair()
        slow_src = _source(a2, window=1, think=50_000)
        sim2.run_until(2_000_000)
        assert slow_src.completed < fast

    def test_window_validation(self):
        sim, medium, a, b = _pair()
        with pytest.raises(ValueError):
            _source(a, window=0)

    def test_one_consumer_per_mac(self):
        sim, medium, a, b = _pair()
        _source(a, window=1)
        with pytest.raises(ValueError, match="consumer"):
            _source(a, window=1)


class TestSelfLimiting:
    def test_closed_loop_does_not_oversubscribe(self):
        """A window-limited source tracks the service rate: the MAC
        queue never grows beyond the window, unlike open-loop Poisson
        sources that overflow under congestion."""
        sim, medium, a, b = _pair()
        source = _source(a, window=4)
        sim.run_until(3_000_000)
        assert a.queue_length <= source.window
        assert a.stats.queue_overflows == 0
