"""Byte-identical determinism against committed pre-optimization goldens.

``golden_traces.json`` holds SHA-256 digests of the capture and
ground-truth traces produced by the simulator *before* the hot-path
overhaul (audibility-culled medium, cached delivery plans, columnar
sniffer, pre-generated traffic).  These tests prove the optimized
simulator emits byte-for-byte the same frames for every library
scenario and for ad-hoc configs that exercise mid-run topology mutation
(roaming and channel management re-target MAC channels, TPC varies
per-destination transmit power, fragmentation re-enters the data path
outside contention).
"""

from __future__ import annotations

import pytest

from repro.frames import Trace

from .golden_lib import GOLDEN_CASES, case_fingerprint, load_fixture, trace_digest

FIXTURE = load_fixture()


def test_fixture_covers_every_case():
    assert set(FIXTURE) == set(GOLDEN_CASES)


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_trace_bytes_match_pre_optimization_golden(name):
    expected = FIXTURE[name]
    actual = case_fingerprint(name)
    assert actual["frames_transmitted"] == expected["frames_transmitted"]
    assert actual["frames_captured"] == expected["frames_captured"]
    assert actual["trace_sha256"] == expected["trace_sha256"]
    assert actual["ground_truth_sha256"] == expected["ground_truth_sha256"]


@pytest.mark.parametrize("name", ["day", "hotspot-plenary"])
def test_streamed_trace_matches_golden(name):
    """The live-streamed capture concatenates to the same golden bytes.

    ``stream()`` drains sniffers incrementally and never materialises
    ground truth, so this covers the columnar drain/compact path on top
    of the buffered ``run()`` covered above.
    """
    chunks = list(GOLDEN_CASES[name]().stream(window_s=1.0))
    merged = Trace.concatenate(chunks)
    assert trace_digest(merged) == FIXTURE[name]["trace_sha256"]
