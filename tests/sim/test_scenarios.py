"""Tests for the scenario builders."""

import numpy as np
import pytest

from repro.frames import FrameType
from repro.sim import (
    BEACON_INTERVAL_US,
    ConstantRate,
    ScenarioConfig,
    ietf_day_config,
    ietf_plenary_config,
    load_ramp_config,
    run_scenario,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        ScenarioConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_stations": 0},
            {"n_aps": 0},
            {"duration_s": 0},
            {"rtscts_fraction": 1.5},
            {"obstructed_fraction": -0.1},
            {"channels": ()},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioConfig(**kwargs)


class TestCaptureRatioGuard:
    def test_zero_frame_ground_truth_reports_zero(self):
        """Degenerate configs must report 0.0, not ZeroDivisionError."""
        from repro.frames import NodeRoster, Trace
        from repro.sim import ScenarioResult, Simulator

        result = ScenarioResult(
            trace=Trace.empty(),
            ground_truth=Trace.empty(),
            roster=NodeRoster(),
            stations=[],
            aps=[],
            sniffers=[],
            medium=None,
            sim=Simulator(),
            config=ScenarioConfig(),
        )
        assert result.capture_ratio == 0.0


class TestRunScenario:
    def test_roster_and_traces(self, small_scenario):
        result = small_scenario
        config = result.config
        assert len(result.roster.ap_ids) == config.n_aps
        assert len(result.roster.station_ids) == config.n_stations
        assert len(result.trace) > 0
        assert len(result.ground_truth) >= len(result.trace)
        assert 0 < result.capture_ratio <= 1.0

    def test_trace_sorted_and_channel_consistent(self, small_scenario):
        trace = small_scenario.trace
        assert trace.is_time_sorted()
        assert set(np.unique(trace.channel)) <= {1, 6, 11}

    def test_beacons_present_at_100ms_cadence(self, small_scenario):
        truth = small_scenario.ground_truth
        beacons = truth.only_type(FrameType.BEACON)
        duration_s = small_scenario.config.duration_s
        expected = duration_s * 10 * small_scenario.config.n_aps
        assert len(beacons) == pytest.approx(expected, rel=0.25)

    def test_uplink_and_downlink_traffic(self, small_scenario):
        truth = small_scenario.ground_truth
        data = truth.only_type(FrameType.DATA)
        ap_ids = set(small_scenario.roster.ap_ids)
        from_ap = np.isin(data.src, list(ap_ids)).sum()
        to_ap = np.isin(data.dst, list(ap_ids)).sum()
        assert from_ap > 0 and to_ap > 0

    def test_deterministic_given_seed(self):
        config = ScenarioConfig(
            n_stations=3, duration_s=2.0, seed=77,
            uplink=ConstantRate(5.0), downlink=ConstantRate(5.0),
        )
        a = run_scenario(config)
        b = run_scenario(config)
        assert a.trace == b.trace

    def test_rtscts_population(self):
        config = ScenarioConfig(
            n_stations=4, duration_s=1.0, rtscts_fraction=0.5, seed=3,
            uplink=ConstantRate(2.0), downlink=ConstantRate(2.0),
        )
        result = run_scenario(config)
        rtscts = [s for s in result.stations if s.uses_rtscts]
        assert len(rtscts) == 2
        # Roster reflects the RTS/CTS flag for the fairness analysis.
        flagged = [n for n in result.roster if n.uses_rtscts]
        assert len(flagged) == 2

    def test_activity_windows_limit_traffic(self):
        config = ScenarioConfig(
            n_stations=2, duration_s=4.0, seed=5,
            uplink=ConstantRate(30.0), downlink=ConstantRate(0.0),
            activity=lambda j, rng: (2_000_000, 4_000_000),
        )
        result = run_scenario(config)
        data = result.ground_truth.only_type(FrameType.DATA)
        if len(data):
            assert data.time_us.min() >= 2_000_000

    def test_multi_channel_scenario(self):
        config = ScenarioConfig(
            n_stations=6, n_aps=3, channels=(1, 6, 11), duration_s=2.0, seed=8,
            uplink=ConstantRate(4.0), downlink=ConstantRate(4.0),
        )
        result = run_scenario(config)
        assert set(np.unique(result.ground_truth.channel)) == {1, 6, 11}
        assert len(result.sniffers) == 3


class TestNamedConfigs:
    def test_load_ramp_shape(self):
        config = load_ramp_config(duration_s=10.0)
        assert config.n_aps == 1
        start = config.downlink.rate_at(0)
        end = config.downlink.rate_at(config.duration_us)
        # Modulation adds noise, but the trend must be strongly upward.
        assert end > start

    def test_ietf_day_config(self):
        config = ietf_day_config(duration_s=10.0)
        assert config.channels == (1, 6, 11)
        assert config.n_aps == 6
        assert config.activity is not None

    def test_ietf_plenary_heavier_than_day(self):
        day = ietf_day_config(duration_s=10.0)
        plenary = ietf_plenary_config(duration_s=10.0)
        # Compare underlying mean offered load (modulation is unit-mean).
        assert plenary.downlink.base.rate_at(0) > day.downlink.base.rate_at(0)
