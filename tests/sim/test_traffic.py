"""Tests for traffic schedules and Poisson sources."""

import numpy as np
import pytest

from repro.frames import FrameType
from repro.sim import (
    ConstantRate,
    LinearRamp,
    ModulatedRate,
    PoissonSource,
    ScaledRate,
    Simulator,
    StepSchedule,
    class_mixture,
    uniform_sizes,
)


class TestSchedules:
    def test_constant(self):
        assert ConstantRate(7.0).rate_at(0) == 7.0
        assert ConstantRate(7.0).rate_at(10**9) == 7.0

    def test_linear_ramp_endpoints(self):
        ramp = LinearRamp(1.0, 11.0, 10_000_000)
        assert ramp.rate_at(0) == 1.0
        assert ramp.rate_at(5_000_000) == pytest.approx(6.0)
        assert ramp.rate_at(10_000_000) == 11.0
        assert ramp.rate_at(99_000_000) == 11.0  # clamped past the end

    def test_zero_duration_ramp(self):
        assert LinearRamp(1.0, 9.0, 0).rate_at(123) == 9.0

    def test_step_schedule(self):
        steps = StepSchedule(((0, 1.0), (5_000_000, 4.0), (8_000_000, 2.0)))
        assert steps.rate_at(0) == 1.0
        assert steps.rate_at(6_000_000) == 4.0
        assert steps.rate_at(9_000_000) == 2.0

    def test_scaled(self):
        assert ScaledRate(ConstantRate(10.0), 0.35).rate_at(0) == pytest.approx(3.5)

    def test_modulated_mean_near_one(self):
        """Log-normal multipliers have unit mean over many epochs."""
        mod = ModulatedRate(ConstantRate(1.0), sigma=0.8, period_us=1000, seed=3)
        rates = [mod.rate_at(t * 1000) for t in range(5000)]
        assert np.mean(rates) == pytest.approx(1.0, rel=0.1)

    def test_modulated_constant_within_epoch(self):
        mod = ModulatedRate(ConstantRate(5.0), sigma=1.0, period_us=1_000_000)
        assert mod.rate_at(100) == mod.rate_at(999_999)

    def test_modulated_deterministic_per_seed(self):
        a = ModulatedRate(ConstantRate(1.0), seed=7).rate_at(0)
        b = ModulatedRate(ConstantRate(1.0), seed=7).rate_at(0)
        assert a == b

    def test_modulated_validation(self):
        with pytest.raises(ValueError):
            ModulatedRate(ConstantRate(1.0), sigma=-1)
        with pytest.raises(ValueError):
            ModulatedRate(ConstantRate(1.0), period_us=0)


class TestSizeSamplers:
    def test_uniform_bounds(self):
        sampler = uniform_sizes(100, 200)
        rng = np.random.default_rng(1)
        sizes = [sampler(rng) for _ in range(500)]
        assert min(sizes) >= 100 and max(sizes) <= 200

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform_sizes(200, 100)

    def test_class_mixture_respects_bands(self):
        from repro.frames import SizeClass, size_class

        sampler = class_mixture({"S": 0.5, "XL": 0.5})
        rng = np.random.default_rng(2)
        classes = {size_class(sampler(rng)) for _ in range(300)}
        assert classes == {SizeClass.S, SizeClass.XL}

    def test_class_mixture_validation(self):
        with pytest.raises(ValueError):
            class_mixture({"HUGE": 1.0})
        with pytest.raises(ValueError):
            class_mixture({"S": 0.0})


class TestPoissonSource:
    def _run(self, schedule, duration_s=20, start_us=0, end_us=None, seed=4):
        sim = Simulator()
        arrivals = []

        def enqueue(dst, size, ftype):
            arrivals.append((sim.now_us, dst, size, ftype))
            return True

        source = PoissonSource(
            sim=sim,
            enqueue=enqueue,
            dst=9,
            schedule=schedule,
            sizes=uniform_sizes(100, 100),
            rng=np.random.default_rng(seed),
            start_us=start_us,
            end_us=end_us,
        )
        sim.run_until(int(duration_s * 1e6))
        return arrivals, source

    def test_mean_rate(self):
        arrivals, _ = self._run(ConstantRate(50.0), duration_s=20)
        assert len(arrivals) == pytest.approx(1000, rel=0.15)

    def test_arrival_payloads(self):
        arrivals, _ = self._run(ConstantRate(10.0), duration_s=2)
        assert all(dst == 9 and size == 100 and ftype == FrameType.DATA
                   for _, dst, size, ftype in arrivals)

    def test_activity_window_respected(self):
        arrivals, _ = self._run(
            ConstantRate(100.0), duration_s=10, start_us=2_000_000, end_us=4_000_000
        )
        times = [t for t, *_ in arrivals]
        assert min(times) >= 2_000_000
        assert max(times) <= 4_000_000

    def test_zero_rate_produces_nothing(self):
        arrivals, _ = self._run(ConstantRate(0.0), duration_s=5)
        assert arrivals == []

    def test_packets_offered_counter(self):
        arrivals, source = self._run(ConstantRate(20.0), duration_s=5)
        assert source.packets_offered == len(arrivals)


class TestRngStreamEquivalence:
    """The hot-path RNG shortcuts must replicate numpy's streams exactly."""

    def test_vector_random_matches_scalar_random(self):
        """Medium._finish pre-draws rng.random(n): must equal n scalar draws."""
        a = np.random.default_rng(123)
        b = np.random.default_rng(123)
        assert [a.random() for _ in range(257)] == list(b.random(257))

    def test_fast_choice_replicates_generator_choice(self):
        from repro.sim.traffic import _fast_choice_supported

        assert _fast_choice_supported() is True

    def test_class_mixture_matches_reference_choice_draws(self):
        """The searchsorted fast path consumes and maps the bitstream
        identically to rng.choice(p=...), interleaved with size draws."""
        weights = {"S": 0.45, "M": 0.08, "L": 0.07, "XL": 0.40}
        sampler = class_mixture(weights)
        names = list(weights)
        probs = np.array([weights[n] for n in names], dtype=np.float64)
        probs = probs / probs.sum()
        ranges = [
            {"S": (60, 400), "M": (401, 800), "L": (801, 1200),
             "XL": (1201, 1500)}[n]
            for n in names
        ]
        a = np.random.default_rng(77)
        b = np.random.default_rng(77)
        got = [sampler(a) for _ in range(500)]
        expected = []
        for _ in range(500):
            idx = int(b.choice(len(names), p=probs))
            low, high = ranges[idx]
            expected.append(int(b.integers(low, high + 1)))
        assert got == expected
        assert a.bit_generator.state == b.bit_generator.state


def _reference_lazy_arrivals(schedule, sizes, rng, end_us):
    """The pre-batching lazy arrival loop, statement for statement.

    Replicates the state machine ``PoissonSource._refill`` pre-generates
    (idle 'loop' ticks poll every 100 ms without touching the RNG; an
    emission draws its size first, then the gap at the post-emission
    rate) — the reference the batch path must match draw for draw,
    including the shared ``max(1, gap)`` clamp.
    """
    from repro.sim.traffic import _poisson_gap_us

    arrivals = []
    kind, t = "loop", 0
    while kind is not None:
        if kind == "emit":
            if t < end_us:
                arrivals.append((t, sizes(rng)))
                rate = schedule.rate_at(t)
                if rate <= 0:
                    kind, t = "loop", t + 100_000
                else:
                    t += _poisson_gap_us(rng, rate)
            else:
                kind = None
        else:
            if t >= end_us:
                kind = None
            else:
                rate = schedule.rate_at(t)
                if rate <= 0:
                    t += 100_000
                else:
                    kind, t = "emit", t + _poisson_gap_us(rng, rate)
    return arrivals


class TestLazyBatchEquivalence:
    """The batch-pregenerated arrival path must emit the exact stream the
    lazy loop would have — same times, same sizes, same RNG consumption —
    because the two share one gap helper (``_poisson_gap_us``)."""

    def _batch_arrivals(self, schedule, end_us, seed, run_us):
        sim = Simulator()
        arrivals = []

        def enqueue(dst, size, ftype):
            arrivals.append((sim.now_us, size))
            return True

        PoissonSource(
            sim=sim,
            enqueue=enqueue,
            dst=1,
            schedule=schedule,
            sizes=uniform_sizes(60, 1500),
            rng=np.random.default_rng(seed),
            end_us=end_us,
        )
        sim.run_until(run_us)
        return arrivals

    def test_batch_matches_lazy_reference_at_moderate_rate(self):
        schedule = ConstantRate(400.0)
        got = self._batch_arrivals(schedule, end_us=5_000_000, seed=21,
                                   run_us=6_000_000)
        expected = _reference_lazy_arrivals(
            schedule, uniform_sizes(60, 1500), np.random.default_rng(21),
            end_us=5_000_000,
        )
        assert len(got) > 1_000  # spans several 512-event refill batches
        assert got == expected

    def test_batch_matches_lazy_reference_under_gap_clamp(self):
        """Rate high enough that raw exponential gaps round to 0 µs and
        the max(1, ...) clamp engages: both paths must clamp alike."""
        schedule = ConstantRate(5_000_000.0)  # mean gap 0.2 µs
        got = self._batch_arrivals(schedule, end_us=3_000, seed=9,
                                   run_us=10_000)
        expected = _reference_lazy_arrivals(
            schedule, uniform_sizes(60, 1500), np.random.default_rng(9),
            end_us=3_000,
        )
        assert got == expected
        times = np.array([t for t, _ in got])
        gaps = np.diff(times)
        # The clamp is actually exercised: arrivals march at the 1 µs
        # floor (any unclamped draw would average five per microsecond).
        assert len(got) > 1_500
        assert (gaps >= 1).all()
        assert (gaps == 1).mean() > 0.5
