"""Tests for station roaming / AP handoff."""

import numpy as np
import pytest

from repro.frames import FrameType
from repro.sim import (
    ConstantRate,
    RoamingConfig,
    ScenarioConfig,
    run_scenario,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RoamingConfig(scan_interval_us=0)
        with pytest.raises(ValueError):
            RoamingConfig(hysteresis_db=-1.0)


def _two_ap_cell(roaming: bool, seed: int = 83) -> ScenarioConfig:
    """Two APs with heavy shadowing: distance-based initial association
    frequently disagrees with best-beacon association, so a roaming
    client population corrects itself."""
    return ScenarioConfig(
        n_stations=10,
        n_aps=2,
        channels=(1, 6),
        duration_s=20.0,
        seed=seed,
        room_width_m=50.0,
        room_depth_m=25.0,
        shadowing_sigma_db=8.0,
        uplink=ConstantRate(4.0),
        downlink=ConstantRate(4.0),
        roaming=roaming,
    )


class TestRoaming:
    def test_disabled_by_default(self):
        result = run_scenario(_two_ap_cell(roaming=False))
        assert result.roaming_manager is None

    def test_stations_converge_to_best_beacon_ap(self):
        result = run_scenario(_two_ap_cell(roaming=True))
        manager = result.roaming_manager
        assert manager is not None
        assert len(manager.roams) >= 1  # shadowing made someone move
        for station in result.stations:
            best = manager.best_ap(station)
            serving_snr = manager.beacon_snr_db(
                station, next(a for a in result.aps if a.node_id == station.ap_id)
            )
            best_snr = manager.beacon_snr_db(station, best)
            # Post-convergence: nobody is more than the hysteresis away
            # from their best AP.
            assert best_snr - serving_snr < manager.config.hysteresis_db + 1e-9

    def test_roam_updates_channel_and_association(self):
        result = run_scenario(_two_ap_cell(roaming=True))
        for station in result.stations:
            ap = next(a for a in result.aps if a.node_id == station.ap_id)
            assert station.mac.channel == ap.channel
            assert station.node_id in ap.stations
        # No station appears in two APs' association lists.
        seen = [s for ap in result.aps for s in ap.stations]
        assert len(seen) == len(set(seen))

    def test_downlink_follows_the_roam(self):
        """After a handoff, downlink frames to the roamer come from the
        new AP."""
        result = run_scenario(_two_ap_cell(roaming=True))
        manager = result.roaming_manager
        if not manager.roams:
            pytest.skip("no roam at this seed")
        roam = manager.roams[0]
        truth = result.ground_truth
        after = truth.between(roam.time_us, int(result.config.duration_us))
        data = after.only_type(FrameType.DATA)
        to_roamer = data.select(data.dst == roam.station_id)
        if len(to_roamer):
            sources = set(np.unique(to_roamer.src).tolist())
            assert roam.new_ap in sources
            assert roam.old_ap not in sources

    def test_reassociation_frame_emitted(self):
        result = run_scenario(_two_ap_cell(roaming=True))
        manager = result.roaming_manager
        if not manager.roams:
            pytest.skip("no roam at this seed")
        roam = manager.roams[0]
        truth = result.ground_truth
        mgmt = truth.only_type(FrameType.MGMT)
        reassoc = mgmt.select(
            (mgmt.src == roam.station_id) & (mgmt.dst == roam.new_ap)
        )
        assert len(reassoc) >= 1

    def test_cooldown_limits_ping_pong(self):
        result = run_scenario(_two_ap_cell(roaming=True))
        manager = result.roaming_manager
        per_station: dict[int, list[int]] = {}
        for roam in manager.roams:
            times = per_station.setdefault(roam.station_id, [])
            if times:
                assert roam.time_us - times[-1] >= manager.config.cooldown_us
            times.append(roam.time_us)
