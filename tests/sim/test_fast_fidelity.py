"""Statistical-equivalence contract for the ``fidelity="fast"`` engine.

The fast engine (:mod:`repro.sim.fastpath`) is *not* pinned by the
golden-trace digests — it is a columnar batch-stepped model of the same
network, so its per-frame stream differs from the discrete-event
engine's.  What it must preserve are the headline congestion metrics
the paper reasons about: delivery ratio and channel busy-time fraction.

This suite runs both engines over the same grid (``uniform`` at
n ∈ {3, 10}, three seeds, 8 simulated seconds, SNR rate adaptation)
and asserts:

* every cell's delivery-ratio gap is within the documented model
  tolerance (``DELIVERY_CELL_TOL``),
* the bootstrap 95% CI of the mean delivery-ratio gap lies inside
  ``±DELIVERY_MEAN_TOL``,
* the mean busy-time gap per grid size is within ``CBT_MEAN_TOL``.

Everything is seeded, so the suite is deterministic: a calibration
regression in the fast engine fails it reproducibly.
"""

import numpy as np
import pytest

from repro.frames.dot11 import RATE_CODES
from repro.sim import FIDELITY_MODES, FastBuiltScenario, build_scenario

SEEDS = (7, 21, 42)
GRID_SIZES = (3, 10)
DURATION_S = 8.0

#: Per-cell absolute delivery-ratio tolerance (documented model gap —
#: the batch-stepped engine resolves contention statistically, not
#: per-slot, so individual seeds can diverge by a few percent).
DELIVERY_CELL_TOL = 0.12

#: The bootstrap CI of the mean gap must sit inside this band.
DELIVERY_MEAN_TOL = 0.10

#: Mean channel busy-time (offered airtime / duration) gap per grid size.
CBT_MEAN_TOL = 0.20

_CODE_TO_RATE = {code: rate for rate, code in RATE_CODES.items()}


def _cbt_fraction(trace, duration_s: float) -> float:
    """Offered-airtime fraction of the ground truth (the CBT proxy).

    192 us of preamble+PLCP per frame plus payload serialization at the
    frame's rate — the same accounting both engines use for airtime.
    """
    rate_code = trace.column("rate_code")
    size = trace.column("size").astype(np.float64)
    rate = np.zeros(len(rate_code), dtype=np.float64)
    for code, mbps in _CODE_TO_RATE.items():
        rate[rate_code == code] = mbps
    air_us = 192.0 + size * 8.0 / rate
    return float(air_us.sum() / (duration_s * 1e6))


def _run_cell(n_stations: int, seed: int, fidelity: str):
    built = build_scenario(
        "uniform",
        n_stations=n_stations,
        duration_s=DURATION_S,
        seed=seed,
        rate_algorithm="snr",
        fidelity=fidelity,
    )
    result = built.run()
    return built.delivery_ratio, _cbt_fraction(result.ground_truth, DURATION_S)


@pytest.fixture(scope="module")
def grid_metrics():
    """(delivery, cbt) per (n, seed) for both engines, computed once."""
    out = {}
    for fidelity in ("default", "fast"):
        for n in GRID_SIZES:
            for seed in SEEDS:
                out[(fidelity, n, seed)] = _run_cell(n, seed, fidelity)
    return out


class TestStatisticalEquivalence:
    def test_delivery_ratio_per_cell(self, grid_metrics):
        for n in GRID_SIZES:
            for seed in SEEDS:
                default, _ = grid_metrics[("default", n, seed)]
                fast, _ = grid_metrics[("fast", n, seed)]
                assert abs(fast - default) <= DELIVERY_CELL_TOL, (
                    f"n={n} seed={seed}: fast {fast:.3f} vs "
                    f"default {default:.3f}"
                )

    def test_delivery_ratio_bootstrap_ci(self, grid_metrics):
        gaps = np.array(
            [
                grid_metrics[("fast", n, seed)][0]
                - grid_metrics[("default", n, seed)][0]
                for n in GRID_SIZES
                for seed in SEEDS
            ]
        )
        rng = np.random.default_rng(0)
        resamples = rng.integers(0, len(gaps), size=(2000, len(gaps)))
        means = gaps[resamples].mean(axis=1)
        lo, hi = np.percentile(means, [2.5, 97.5])
        assert -DELIVERY_MEAN_TOL <= lo and hi <= DELIVERY_MEAN_TOL, (
            f"bootstrap CI of mean delivery gap [{lo:.3f}, {hi:.3f}] "
            f"outside ±{DELIVERY_MEAN_TOL}"
        )

    def test_busy_time_mean_per_grid_size(self, grid_metrics):
        for n in GRID_SIZES:
            default = np.mean(
                [grid_metrics[("default", n, s)][1] for s in SEEDS]
            )
            fast = np.mean([grid_metrics[("fast", n, s)][1] for s in SEEDS])
            assert abs(fast - default) <= CBT_MEAN_TOL, (
                f"n={n}: mean CBT fast {fast:.3f} vs default {default:.3f}"
            )

    def test_congestion_trend_preserved(self, grid_metrics):
        """More stations → lower delivery, busier channel (both engines)."""
        for fidelity in ("default", "fast"):
            small = np.mean(
                [grid_metrics[(fidelity, 3, s)][0] for s in SEEDS]
            )
            large = np.mean(
                [grid_metrics[(fidelity, 10, s)][0] for s in SEEDS]
            )
            assert large < small
            small_cbt = np.mean(
                [grid_metrics[(fidelity, 3, s)][1] for s in SEEDS]
            )
            large_cbt = np.mean(
                [grid_metrics[(fidelity, 10, s)][1] for s in SEEDS]
            )
            assert large_cbt > small_cbt


class TestFastEngineSurface:
    def test_fidelity_modes_and_build_routing(self):
        assert set(FIDELITY_MODES) == {"default", "fast"}
        fast = build_scenario(
            "uniform", n_stations=3, duration_s=1.0, seed=7, fidelity="fast"
        )
        assert isinstance(fast, FastBuiltScenario)
        assert fast.fidelity == "fast"
        default = build_scenario(
            "uniform", n_stations=3, duration_s=1.0, seed=7
        )
        assert not isinstance(default, FastBuiltScenario)

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            build_scenario("uniform", n_stations=3, fidelity="fastest")

    def test_fast_run_is_deterministic(self):
        def run():
            built = build_scenario(
                "uniform",
                n_stations=4,
                duration_s=2.0,
                seed=11,
                fidelity="fast",
            )
            result = built.run()
            return built.delivery_ratio, built.frames_transmitted, result

        d1, f1, r1 = run()
        d2, f2, r2 = run()
        assert d1 == d2
        assert f1 == f2
        assert len(r1.trace) == len(r2.trace)
        assert np.array_equal(
            r1.trace.column("time_us"), r2.trace.column("time_us")
        )

    def test_stream_matches_buffered_run(self):
        built_a = build_scenario(
            "uniform", n_stations=4, duration_s=2.0, seed=11, fidelity="fast"
        )
        buffered = built_a.run().trace
        built_b = build_scenario(
            "uniform", n_stations=4, duration_s=2.0, seed=11, fidelity="fast"
        )
        chunks = list(built_b.stream(chunk_frames=256))
        assert all(len(c) <= 256 for c in chunks)
        streamed = np.concatenate([c.column("time_us") for c in chunks])
        assert np.array_equal(streamed, buffered.column("time_us"))

    def test_single_consumption_enforced(self):
        built = build_scenario(
            "uniform", n_stations=3, duration_s=1.0, seed=7, fidelity="fast"
        )
        built.run()
        with pytest.raises(RuntimeError, match="already run"):
            built.run()

    def test_perf_counters_report_batch_stepping(self):
        built = build_scenario(
            "uniform", n_stations=3, duration_s=2.0, seed=7, fidelity="fast"
        )
        built.run()
        counters = built.perf_counters
        assert counters["slot_epochs"] > 0
        # The event loop is bypassed entirely: work is batch-stepped,
        # not discrete events.
        assert built.sim.events_processed == 0
