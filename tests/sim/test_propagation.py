"""Tests for the propagation model."""

import numpy as np
import pytest

from repro.sim import Position, PropagationModel


class TestPathLoss:
    def test_monotone_in_distance(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        losses = [model.path_loss_db(d) for d in (1, 5, 10, 20, 50)]
        assert losses == sorted(losses)

    def test_reference_loss_at_1m(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        assert model.path_loss_db(1.0) == pytest.approx(40.0)

    def test_sub_metre_clamped(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        assert model.path_loss_db(0.1) == model.path_loss_db(1.0)

    def test_exponent(self):
        model = PropagationModel(exponent=3.0, shadowing_sigma_db=0.0)
        assert model.path_loss_db(10.0) == pytest.approx(40.0 + 30.0)


class TestShadowing:
    def test_symmetric_and_stable(self):
        model = PropagationModel(shadowing_sigma_db=6.0)
        a = model.link_shadowing_db(1, 2)
        assert model.link_shadowing_db(2, 1) == a
        assert model.link_shadowing_db(1, 2) == a  # cached, not re-drawn

    def test_zero_sigma_means_zero(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        assert model.link_shadowing_db(1, 2) == 0.0

    def test_deterministic_per_seed(self):
        a = PropagationModel(rng=np.random.default_rng(1)).link_shadowing_db(1, 2)
        b = PropagationModel(rng=np.random.default_rng(1)).link_shadowing_db(1, 2)
        assert a == b


class TestReceivedPower:
    def test_received_power_drops_with_distance(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        origin = Position(0, 0)
        near = model.received_power_dbm(15.0, origin, Position(2, 0))
        far = model.received_power_dbm(15.0, origin, Position(30, 0))
        assert near > far

    def test_node_extra_loss_applies_to_both_endpoints(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        model.node_extra_loss_db[7] = 20.0
        origin, there = Position(0, 0), Position(10, 0)
        base = model.received_power_dbm(15.0, origin, there, tx_id=1, rx_id=2)
        as_tx = model.received_power_dbm(15.0, origin, there, tx_id=7, rx_id=2)
        as_rx = model.received_power_dbm(15.0, origin, there, tx_id=1, rx_id=7)
        assert as_tx == pytest.approx(base - 20.0)
        assert as_rx == pytest.approx(base - 20.0)


class TestSnr:
    def test_snr_at_noise_floor(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        assert model.snr_db(model.noise_floor_dbm) == pytest.approx(0.0)

    def test_interference_reduces_snr(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        clean = model.snr_db(-60.0)
        jammed = model.snr_db(-60.0, interference_mw=10 ** (-70 / 10.0))
        assert jammed < clean

    def test_position_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0
