"""Tests for the rate-adaptation algorithms."""

import pytest

from repro.sim import (
    AarfRateAdaptation,
    ArfRateAdaptation,
    FixedRate,
    PhyModel,
    SnrOracleRateAdaptation,
    make_rate_adaptation,
)


class TestFixed:
    def test_rate_never_changes(self):
        ra = FixedRate(5.5)
        ra.on_failure(1)
        ra.on_failure(1)
        ra.on_success(1)
        assert ra.rate_for(1) == 5.5

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FixedRate(54.0)


class TestArf:
    def test_initial_rate(self):
        assert ArfRateAdaptation().rate_for(1) == 11.0

    def test_two_failures_step_down(self):
        ra = ArfRateAdaptation(down_threshold=2)
        ra.on_failure(1)
        assert ra.rate_for(1) == 11.0  # one failure is not enough
        ra.on_failure(1)
        assert ra.rate_for(1) == 5.5

    def test_ten_successes_step_up(self):
        ra = ArfRateAdaptation(up_threshold=10, down_threshold=2)
        ra.on_failure(1); ra.on_failure(1)            # drop to 5.5
        for _ in range(9):
            ra.on_success(1)
        assert ra.rate_for(1) == 5.5
        ra.on_success(1)
        assert ra.rate_for(1) == 11.0

    def test_failure_right_after_upgrade_reverts(self):
        ra = ArfRateAdaptation(up_threshold=3, down_threshold=2)
        ra.on_failure(1); ra.on_failure(1)            # 5.5
        for _ in range(3):
            ra.on_success(1)                          # probe up to 11
        assert ra.rate_for(1) == 11.0
        ra.on_failure(1)                              # immediate revert
        assert ra.rate_for(1) == 5.5

    def test_floor_at_1mbps(self):
        ra = ArfRateAdaptation(down_threshold=1)
        for _ in range(10):
            ra.on_failure(1)
        assert ra.rate_for(1) == 1.0

    def test_ceiling_at_11mbps(self):
        ra = ArfRateAdaptation(up_threshold=1)
        for _ in range(10):
            ra.on_success(1)
        assert ra.rate_for(1) == 11.0

    def test_links_independent(self):
        ra = ArfRateAdaptation(down_threshold=1)
        ra.on_failure(1)
        assert ra.rate_for(1) == 5.5
        assert ra.rate_for(2) == 11.0

    def test_reset_forgets_link(self):
        ra = ArfRateAdaptation(down_threshold=1)
        ra.on_failure(1)
        ra.reset(1)
        assert ra.rate_for(1) == 11.0

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            ArfRateAdaptation(up_threshold=0)


class TestAarf:
    def test_failed_probe_doubles_threshold(self):
        ra = AarfRateAdaptation(up_threshold=2, down_threshold=2)
        ra.on_failure(1); ra.on_failure(1)        # down to 5.5
        ra.on_success(1); ra.on_success(1)        # probe up to 11
        assert ra.rate_for(1) == 11.0
        ra.on_failure(1)                           # probe fails -> back down
        assert ra.rate_for(1) == 5.5
        # Now 2 successes are no longer enough (threshold doubled to 4).
        ra.on_success(1); ra.on_success(1)
        assert ra.rate_for(1) == 5.5
        ra.on_success(1); ra.on_success(1)
        assert ra.rate_for(1) == 11.0

    def test_threshold_capped(self):
        ra = AarfRateAdaptation(up_threshold=2, max_up_threshold=4)
        state = ra._link(1)
        state.just_upgraded = True
        ra.on_failure(1)
        state = ra._link(1)
        assert state.up_threshold == 4
        state.just_upgraded = True
        ra.on_failure(1)
        assert ra._link(1).up_threshold == 4  # capped


class TestSnrOracle:
    def test_no_feedback_uses_initial_rate(self):
        assert SnrOracleRateAdaptation().rate_for(1) == 11.0

    def test_good_snr_keeps_11(self):
        ra = SnrOracleRateAdaptation()
        ra.on_feedback_snr(1, 28.0)
        assert ra.rate_for(1) == 11.0

    def test_bad_snr_falls_back(self):
        ra = SnrOracleRateAdaptation()
        ra.on_feedback_snr(1, 3.0)
        assert ra.rate_for(1) <= 2.0

    def test_failures_do_not_change_rate(self):
        """The defining property: collision losses leave the rate alone."""
        ra = SnrOracleRateAdaptation()
        ra.on_feedback_snr(1, 28.0)
        for _ in range(50):
            ra.on_failure(1)
        assert ra.rate_for(1) == 11.0

    def test_ewma_tracks_snr(self):
        ra = SnrOracleRateAdaptation(ewma_alpha=1.0)
        ra.on_feedback_snr(1, 28.0)
        assert ra.rate_for(1) == 11.0
        ra.on_feedback_snr(1, 2.0)
        assert ra.rate_for(1) == 1.0

    def test_reset(self):
        ra = SnrOracleRateAdaptation()
        ra.on_feedback_snr(1, 2.0)
        ra.reset(1)
        assert ra.rate_for(1) == 11.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            SnrOracleRateAdaptation(ewma_alpha=0.0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("fixed", FixedRate),
            ("arf", ArfRateAdaptation),
            ("aarf", AarfRateAdaptation),
            ("snr", SnrOracleRateAdaptation),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_rate_adaptation(name), cls)

    def test_kwargs_forwarded(self):
        ra = make_rate_adaptation("arf", down_threshold=5)
        assert ra.down_threshold == 5

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_rate_adaptation("minstrel")
