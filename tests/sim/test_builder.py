"""Tests for the composable scenario builder layer."""

import numpy as np
import pytest

from repro.frames import Trace
from repro.sim import (
    BuiltScenario,
    ConstantRate,
    ExplicitPlacement,
    ExplicitPopulation,
    FractionPopulation,
    HotspotPlacement,
    Position,
    RoomPlacement,
    ScenarioBuilder,
    ScenarioConfig,
    StationRole,
    run_scenario,
)


def small_config(**overrides) -> ScenarioConfig:
    base = dict(
        n_stations=4,
        n_aps=1,
        duration_s=3.0,
        seed=5,
        uplink=ConstantRate(8.0),
        downlink=ConstantRate(10.0),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


class TestDefaultEquivalence:
    def test_builder_run_matches_run_scenario(self):
        """run_scenario delegates to the builder; a hand-built default
        builder must reproduce it frame for frame."""
        config = small_config(rtscts_fraction=0.5, obstructed_fraction=0.25)
        classic = run_scenario(config)
        built = ScenarioBuilder(config).build().run()
        assert built.trace == classic.trace
        assert built.ground_truth == classic.ground_truth

    def test_stream_concatenation_equals_buffered_trace(self):
        config = small_config(n_aps=2, channels=(1, 6))
        buffered = run_scenario(config).trace.sorted_by_time()
        chunks = list(
            ScenarioBuilder(config).build().stream(chunk_frames=100)
        )
        assert all(len(c) <= 100 for c in chunks)
        assert Trace.concatenate(chunks) == buffered


class TestComponents:
    def test_fraction_population_quotas(self):
        config = small_config(
            n_stations=10, rtscts_fraction=0.3, obstructed_fraction=0.2
        )
        roles = FractionPopulation().assign(config, np.random.default_rng(0))
        assert sum(r.uses_rtscts for r in roles) == 3
        assert sum(r.obstructed for r in roles) == 2
        for role in roles:
            expected = config.obstructed_load_factor if role.obstructed else 1.0
            assert role.load_factor == expected

    def test_explicit_population_length_checked(self):
        config = small_config()
        population = ExplicitPopulation(roles=(StationRole(),))
        with pytest.raises(ValueError, match="pins 1 roles"):
            population.assign(config, np.random.default_rng(0))

    def test_explicit_population_wired_into_stations(self):
        config = small_config()
        roles = (
            StationRole(uses_rtscts=True),
            StationRole(),
            StationRole(uses_rtscts=True),
            StationRole(),
        )
        built = (
            ScenarioBuilder(config)
            .with_population(ExplicitPopulation(roles=roles))
            .build()
        )
        assert [s.uses_rtscts for s in built.stations] == [
            True, False, True, False,
        ]

    def test_hotspot_placement_clusters_near_focus(self):
        config = small_config(
            n_stations=40, room_width_m=50.0, room_depth_m=30.0
        )
        placement = HotspotPlacement(centres=((0.2, 0.5),), spread_m=2.0)
        positions = placement.station_positions(
            config, np.random.default_rng(1)
        )
        xs = np.array([p.x for p in positions])
        ys = np.array([p.y for p in positions])
        assert len(positions) == 40
        # Focus is (10, 15); a 2 m spread keeps everyone well inside 20 m.
        assert np.all(np.hypot(xs - 10.0, ys - 15.0) < 20.0)
        assert np.mean(np.hypot(xs - 10.0, ys - 15.0)) < 5.0

    def test_hotspot_placement_validation(self):
        with pytest.raises(ValueError, match="centre"):
            HotspotPlacement(centres=())
        with pytest.raises(ValueError, match="spread"):
            HotspotPlacement(spread_m=0.0)

    def test_explicit_placement_counts_checked(self):
        config = small_config(n_stations=2)
        placement = ExplicitPlacement(
            aps=(Position(1.0, 1.0), Position(2.0, 2.0)),
            stations=(Position(0.0, 0.0), Position(3.0, 3.0)),
            sniffer=Position(1.5, 1.5),
        )
        with pytest.raises(ValueError, match="pins 2 APs"):
            placement.ap_positions(config)  # config has one AP
        assert len(placement.station_positions(config, None)) == 2

    def test_room_placement_matches_topology_helpers(self):
        config = small_config()
        placement = RoomPlacement()
        aps = placement.ap_positions(config)
        assert len(aps) == 1
        assert aps[0].y == config.room_depth_m / 2.0


class TestBuilderApi:
    def test_configure_replaces_fields(self):
        builder = ScenarioBuilder(small_config()).configure(n_stations=7)
        assert builder.config.n_stations == 7

    def test_configure_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            ScenarioBuilder(small_config()).configure(bogus=1)

    def test_built_scenario_runs_once(self):
        built = ScenarioBuilder(small_config()).build()
        built.run()
        with pytest.raises(RuntimeError, match="already run"):
            built.run()
        with pytest.raises(RuntimeError, match="already run"):
            list(built.stream())

    def test_stream_parameter_validation(self):
        built = ScenarioBuilder(small_config()).build()
        with pytest.raises(ValueError, match="chunk_frames"):
            list(built.stream(chunk_frames=0))
        built = ScenarioBuilder(small_config()).build()
        with pytest.raises(ValueError, match="window_s"):
            list(built.stream(window_s=0.0))
        built = ScenarioBuilder(small_config()).build()
        with pytest.raises(ValueError, match="drain_guard_us"):
            list(built.stream(drain_guard_us=100))

    def test_roster_available_before_run(self):
        built = ScenarioBuilder(small_config(n_aps=2, channels=(1, 6))).build()
        roster = built.roster
        assert len(roster.ap_ids) == 2
        assert len(roster.station_ids) == 4


class TestStreamedRunState:
    def test_streamed_run_records_no_ground_truth(self):
        built = ScenarioBuilder(small_config()).build()
        total = sum(len(chunk) for chunk in built.stream(chunk_frames=64))
        assert len(built.medium.ground_truth) == 0
        assert built.frames_transmitted > 0
        assert total == built.frames_captured
        assert sum(s.frames_buffered for s in built.sniffers) == 0

    def test_post_run_statistics(self):
        built = ScenarioBuilder(small_config()).build()
        built.run()
        assert 0.0 < built.capture_ratio <= 1.0
        assert 0.0 < built.delivery_ratio <= 1.0
        assert built.offered_packets > 0

    def test_ratio_guards_on_silent_network(self):
        """Zero offered load: ratios report cleanly, never raise."""
        config = small_config(
            duration_s=0.5,
            uplink=ConstantRate(0.0),
            downlink=ConstantRate(0.0),
        )

        # A do-nothing traffic program: no sources, no association MGMT.
        class Silent:
            def attach(self, built):
                return []

        built = ScenarioBuilder(config).with_traffic(Silent()).build()
        list(built.stream())
        # Beacons still go on the air, but no DATA was ever attempted.
        assert built.delivery_ratio == 0.0
        assert built.offered_packets == 0
        assert 0.0 <= built.capture_ratio <= 1.0

    def test_capture_ratio_zero_frame_guard(self):
        """Degenerate zero-transmission state: 0.0, not ZeroDivisionError."""
        built = ScenarioBuilder(small_config()).build()
        # Inspect before any run: nothing has been transmitted yet.
        assert built.frames_transmitted == 0
        assert built.capture_ratio == 0.0
