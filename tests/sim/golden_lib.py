"""Golden-trace fixtures: canonical configs and digests for determinism.

The simulator hot-path work (audibility culling, cached delivery plans,
columnar capture, traffic pre-generation) must not change a single
emitted frame.  The enforcement is a set of *golden digests*: SHA-256
over the raw column bytes of the capture and ground-truth traces for a
spread of library scenarios and feature-exercising ad-hoc configs, all
at fixed seeds.  The committed fixture ``golden_traces.json`` was
generated from the pre-optimization simulator; any optimization that
perturbs RNG draw order, event scheduling order or per-frame arithmetic
shows up as a digest mismatch.

Regenerate (only when a PR *deliberately* changes simulator physics)
with::

    PYTHONPATH=src python -m tests.sim.golden_lib

"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable

import numpy as np

from repro.frames import TRACE_COLUMNS, Trace
from repro.sim import ScenarioBuilder, ScenarioConfig, build_scenario
from repro.sim.builder import BuiltScenario
from repro.sim.dcf import MacConfig
from repro.sim.traffic import ConstantRate

FIXTURE_PATH = Path(__file__).with_name("golden_traces.json")


def trace_digest(trace: Trace) -> str:
    """SHA-256 over the raw bytes of every column, schema order."""
    digest = hashlib.sha256()
    for name in TRACE_COLUMNS:
        digest.update(np.ascontiguousarray(getattr(trace, name)).tobytes())
    return digest.hexdigest()


def _channel_mgmt() -> BuiltScenario:
    """Ad-hoc config exercising ChannelManager mid-run channel switches.

    Stations pile into one corner so one channel carries most of the
    load and the manager provably moves an AP during the run.
    """
    from repro.sim.builder import HotspotPlacement

    return (
        ScenarioBuilder(
            ScenarioConfig(
                n_stations=12,
                n_aps=4,
                channels=(1, 6),
                duration_s=12.0,
                seed=5,
                channel_management=True,
                uplink=ConstantRate(12.0),
                downlink=ConstantRate(25.0),
            )
        )
        .with_placement(HotspotPlacement(centres=((0.05, 0.1),), spread_m=3.0))
        .build()
    )


def _tpc_frag() -> BuiltScenario:
    """Ad-hoc config exercising TPC (per-destination tx power) and
    fragmentation bursts plus a heavy RTS/CTS population."""
    return ScenarioBuilder(
        ScenarioConfig(
            n_stations=8,
            duration_s=6.0,
            seed=9,
            power_control=True,
            mac_config=MacConfig(
                fragmentation_threshold=600, rts_threshold=900
            ),
            rtscts_fraction=0.5,
        )
    ).build()


#: name -> zero-arg factory returning a fresh, unconsumed BuiltScenario.
#: Durations are trimmed so the whole golden suite stays test-suite fast
#: while covering every library scenario and the mid-run mutation paths
#: (roaming and channel management both re-target MAC channels, TPC
#: varies per-destination transmit power, fragmentation re-enters
#: ``_send_data`` outside contention).
GOLDEN_CASES: dict[str, Callable[[], BuiltScenario]] = {
    "ramp": lambda: build_scenario("ramp", duration_s=8.0),
    "day": lambda: build_scenario("day", duration_s=8.0),
    "plenary": lambda: build_scenario("plenary", duration_s=6.0),
    "hidden-terminal": lambda: build_scenario("hidden-terminal", duration_s=6.0),
    "hotspot-plenary": lambda: build_scenario("hotspot-plenary", duration_s=6.0),
    "co-channel": lambda: build_scenario("co-channel", duration_s=6.0),
    "roaming-storm": lambda: build_scenario("roaming-storm", duration_s=10.0),
    "channel-mgmt": _channel_mgmt,
    "tpc-frag": _tpc_frag,
}


def case_fingerprint(name: str) -> dict[str, object]:
    """Run one golden case and produce its digest record."""
    result = GOLDEN_CASES[name]().run()
    return {
        "trace_sha256": trace_digest(result.trace.sorted_by_time()),
        "ground_truth_sha256": trace_digest(result.ground_truth),
        "frames_transmitted": result.medium.frames_transmitted,
        "frames_captured": len(result.trace),
    }


def load_fixture() -> dict[str, dict[str, object]]:
    return json.loads(FIXTURE_PATH.read_text())


def regenerate() -> None:
    fixture = {}
    for name in GOLDEN_CASES:
        record = case_fingerprint(name)
        fixture[name] = record
        print(f"{name}: {record['frames_transmitted']} frames "
              f"trace={record['trace_sha256'][:12]}…")
    FIXTURE_PATH.write_text(json.dumps(fixture, indent=2) + "\n")
    print(f"wrote {FIXTURE_PATH}")


if __name__ == "__main__":
    regenerate()
