"""Tests for 802.11 fragmentation in the DCF MAC."""

import numpy as np
import pytest

from repro.frames import BROADCAST, FrameType
from repro.sim import MacConfig

from .test_dcf import _pair


class TestFragmentBurst:
    def test_msdu_split_into_fragments(self):
        config = MacConfig(fragmentation_threshold=400)
        sim, medium, a, b = _pair(config=config)
        a.enqueue(2, 1000)
        sim.run_until(2_000_000)
        data = [f for _, f in medium.ground_truth if f.ftype == FrameType.DATA]
        assert [f.size for f in data] == [400, 400, 200]
        # Each fragment individually acknowledged.
        acks = [f for _, f in medium.ground_truth if f.ftype == FrameType.ACK]
        assert len(acks) == 3

    def test_fragments_share_sequence_number(self):
        config = MacConfig(fragmentation_threshold=400)
        sim, medium, a, b = _pair(config=config)
        a.enqueue(2, 900)
        sim.run_until(2_000_000)
        data = [f for _, f in medium.ground_truth if f.ftype == FrameType.DATA]
        assert len({f.seq for f in data}) == 1

    def test_burst_is_sifs_spaced(self):
        """Fragments after the first follow the previous ACK by SIFS,
        without re-contending for the channel."""
        config = MacConfig(fragmentation_threshold=400)
        sim, medium, a, b = _pair(config=config)
        a.enqueue(2, 800)
        sim.run_until(2_000_000)
        events = medium.ground_truth
        # Sequence: DATA ACK DATA ACK.
        kinds = [f.ftype for _, f in events]
        assert kinds == [FrameType.DATA, FrameType.ACK] * 2
        (t_ack1, ack1) = events[1]
        (t_data2, _) = events[2]
        assert t_data2 - (t_ack1 + ack1.duration_us) == 10  # SIFS

    def test_small_frames_not_fragmented(self):
        config = MacConfig(fragmentation_threshold=400)
        sim, medium, a, b = _pair(config=config)
        a.enqueue(2, 400)
        sim.run_until(2_000_000)
        data = [f for _, f in medium.ground_truth if f.ftype == FrameType.DATA]
        assert [f.size for f in data] == [400]

    def test_broadcast_never_fragmented(self):
        config = MacConfig(fragmentation_threshold=100)
        sim, medium, a, b = _pair(config=config)
        a.enqueue(BROADCAST, 500, FrameType.DATA)
        sim.run_until(2_000_000)
        data = [f for _, f in medium.ground_truth if f.ftype == FrameType.DATA]
        assert [f.size for f in data] == [500]

    def test_exact_multiple_has_no_tail_fragment(self):
        config = MacConfig(fragmentation_threshold=500)
        sim, medium, a, b = _pair(config=config)
        a.enqueue(2, 1000)
        sim.run_until(2_000_000)
        data = [f for _, f in medium.ground_truth if f.ftype == FrameType.DATA]
        assert [f.size for f in data] == [500, 500]

    def test_disabled_by_default(self):
        sim, medium, a, b = _pair()
        a.enqueue(2, 1500)
        sim.run_until(2_000_000)
        data = [f for _, f in medium.ground_truth if f.ftype == FrameType.DATA]
        assert [f.size for f in data] == [1500]


class TestFragmentRetries:
    def test_lost_fragment_retried_with_backoff(self):
        """A fragment that times out is retried like any frame; the
        burst then continues from the retried fragment."""
        config = MacConfig(fragmentation_threshold=400, retry_limit=2)
        sim, medium, a, b = _pair(distance=5000.0, config=config)
        a.enqueue(2, 800)
        sim.run_until(5_000_000)
        data = [f for _, f in medium.ground_truth if f.ftype == FrameType.DATA]
        # Only the first fragment is ever attempted (never acked).
        assert all(f.size == 400 for f in data)
        assert len(data) == 3  # 1 + retry_limit
        assert a.stats.data_drops == 1

    def test_queue_continues_after_fragmented_msdu(self):
        config = MacConfig(fragmentation_threshold=400)
        sim, medium, a, b = _pair(config=config)
        a.enqueue(2, 800)
        a.enqueue(2, 100)
        sim.run_until(2_000_000)
        data = [f for _, f in medium.ground_truth if f.ftype == FrameType.DATA]
        assert [f.size for f in data] == [400, 400, 100]

    def test_delivery_improves_on_marginal_link(self):
        """The Modiano frame-size effect: on a high-BER link, smaller
        fragments raise end-to-end delivery of large MSDUs."""
        import numpy as np
        from repro.sim import (
            DcfMac, FixedRate, Medium, PhyModel, Position,
            PropagationModel, Simulator,
        )

        def run(threshold):
            sim = Simulator()
            prop = PropagationModel(shadowing_sigma_db=0.0)
            # Attenuation chosen so the link SNR sits near 8.5 dB: at
            # 11 Mbps a 1500 B frame survives ~36% of the time but a
            # 300 B fragment ~80% — the regime where fragmentation pays.
            prop.node_extra_loss_db[1] = 41.5
            medium = Medium(sim, prop, PhyModel(), np.random.default_rng(3))
            config = MacConfig(
                fragmentation_threshold=threshold, retry_limit=4
            )
            a = DcfMac(sim, medium, PhyModel(), 1, Position(0, 0), 1,
                       np.random.default_rng(4), config=config,
                       rate_adaptation=FixedRate(11.0))
            b = DcfMac(sim, medium, PhyModel(), 2, Position(5, 0), 1,
                       np.random.default_rng(5), config=config,
                       rate_adaptation=FixedRate(11.0))
            for _ in range(30):
                a.enqueue(2, 1500)
            sim.run_until(30_000_000)
            return b.stats.delivered_bytes

        assert run(300) > run(None)
