"""Tests for the named scenario library."""

import numpy as np
import pytest

from repro.frames import FrameType
from repro.sim import (
    SCENARIO_LIBRARY,
    available_scenarios,
    build_scenario,
    scenario_builder,
    scenario_config,
)


class TestRegistry:
    def test_expected_scenarios_present(self):
        names = available_scenarios()
        for expected in (
            "ramp",
            "day",
            "plenary",
            "hidden-terminal",
            "hotspot-plenary",
            "co-channel",
            "roaming-storm",
        ):
            assert expected in names

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_builder("no-such-scenario")

    def test_factory_params_and_config_overrides_split(self):
        config = scenario_config(
            "ramp", n_stations=9, duration_s=12.0, room_width_m=50.0
        )
        assert config.n_stations == 9       # factory kwarg
        assert config.duration_s == 12.0    # factory kwarg
        assert config.room_width_m == 50.0  # ScenarioConfig override

    def test_unknown_override_raises(self):
        with pytest.raises(TypeError):
            scenario_config("ramp", bogus_field=1)

    def test_every_entry_builds(self):
        for name in available_scenarios():
            built = build_scenario(name, n_stations=2, duration_s=1.0)
            assert len(built.stations) == 2


class TestHiddenTerminal:
    def test_clusters_cannot_sense_each_other_but_reach_ap(self):
        built = build_scenario("hidden-terminal", n_stations=4, duration_s=1.0)
        prop = built.propagation
        ap = built.aps[0]
        # Stations alternate ends; station 0 and 1 sit on opposite sides.
        left, right = built.stations[0], built.stations[1]
        cross_rx = prop.received_power_dbm(
            built.config.station_tx_power_dbm,
            left.mac.position,
            right.mac.position,
            tx_id=left.node_id,
            rx_id=right.node_id,
        )
        ap_rx = prop.received_power_dbm(
            built.config.station_tx_power_dbm,
            left.mac.position,
            ap.mac.position,
            tx_id=left.node_id,
            rx_id=ap.node_id,
        )
        # Below the MAC carrier-sense threshold across the room, but
        # comfortably decodable at the AP.
        assert cross_rx < left.mac.sense_threshold_dbm
        assert ap_rx > ap.mac.sense_threshold_dbm + 5.0

    def test_geometry_overrides_reach_the_pinned_placement(self):
        """Config overrides must apply before positions are pinned."""
        built = build_scenario(
            "hidden-terminal", n_stations=4, duration_s=1.0,
            room_depth_m=24.0,
        )
        assert built.config.room_depth_m == 24.0
        ys = [s.mac.position.y for s in built.stations]
        # Stations spread over the full 24 m depth, not the default 8 m.
        assert max(ys) > 8.0
        assert built.sniffers[0].position.y == 12.0

    def test_collisions_hurt_delivery_and_rtscts_recovers(self):
        bare = build_scenario(
            "hidden-terminal", n_stations=6, duration_s=6.0
        ).run()
        protected = build_scenario(
            "hidden-terminal", n_stations=6, duration_s=6.0,
            rtscts_fraction=1.0,
        ).run()

        def delivery(result):
            stats = [s.mac.stats for s in result.stations]
            attempts = sum(st.data_attempts for st in stats)
            successes = sum(st.data_successes for st in stats)
            return successes / attempts

        assert delivery(bare) < 0.6          # hidden DATA collides hard
        assert delivery(protected) > delivery(bare)


class TestCoChannel:
    def test_all_aps_share_one_channel(self):
        built = build_scenario("co-channel", n_stations=4, duration_s=1.0)
        assert {ap.channel for ap in built.aps} == {1}
        assert len(built.aps) == 3
        assert len(built.sniffers) == 1


class TestRoamingStorm:
    def test_roams_occur(self):
        result = build_scenario(
            "roaming-storm", n_stations=10, duration_s=12.0
        ).run()
        assert result.roaming_manager is not None
        assert len(result.roaming_manager.roams) >= 1
        # Reassociation management frames are on the air.
        mgmt = result.ground_truth.only_type(FrameType.MGMT)
        assert len(mgmt) >= len(result.roaming_manager.roams)


class TestHotspotPlenary:
    def test_stations_concentrate_at_foci(self):
        built = build_scenario("hotspot-plenary", n_stations=30, duration_s=1.0)
        config = built.config
        xs = np.array([s.mac.position.x for s in built.stations])
        ys = np.array([s.mac.position.y for s in built.stations])
        foci = np.array(
            [
                (0.15 * config.room_width_m, 0.5 * config.room_depth_m),
                (0.85 * config.room_width_m, 0.55 * config.room_depth_m),
                (0.5 * config.room_width_m, 0.3 * config.room_depth_m),
            ]
        )
        dist_to_nearest = np.min(
            np.hypot(xs[:, None] - foci[:, 0], ys[:, None] - foci[:, 1]),
            axis=1,
        )
        # A 4 m Gaussian spread keeps nearly everyone within ~3 sigma of
        # a focus; a uniform scatter over a 40x25 room would not.
        assert np.mean(dist_to_nearest) < 8.0


class TestParameterValidation:
    """scenario_parameters / validate_scenario_params (the typo guard)."""

    def test_parameters_union_factory_and_config(self):
        from repro.sim import scenario_parameters

        params = scenario_parameters("hidden-terminal")
        assert "uplink_pps" in params        # factory keyword
        assert "room_width_m" in params      # factory AND config field
        assert "shadowing_sigma_db" in params  # config-only override

    def test_classic_wrapper_exposes_factory_params(self):
        """_classic-wrapped config factories (ramp/day/plenary/uniform)
        must surface their declared keywords through the **params shim."""
        from repro.sim import scenario_parameters

        assert "uplink_pps" in scenario_parameters("uniform")
        assert "downlink_pps" in scenario_parameters("uniform")

    def test_typo_raises_with_suggestion(self):
        from repro.sim import UnknownParameterError, validate_scenario_params

        with pytest.raises(UnknownParameterError, match="did you mean 'n_stations'"):
            validate_scenario_params("ramp", ["n_statoins"])

    def test_unknown_parameter_is_a_type_error(self):
        """Back-compat: unknown kwargs raised TypeError before; the new
        did-you-mean error must still be caught by `except TypeError`."""
        from repro.sim import UnknownParameterError

        assert issubclass(UnknownParameterError, TypeError)
        with pytest.raises(TypeError, match="did you mean"):
            scenario_builder("ramp", n_statoins=4)

    def test_unknown_scenario_suggests(self):
        with pytest.raises(KeyError, match="did you mean 'ramp'"):
            scenario_builder("rampp")

    def test_valid_params_pass(self):
        from repro.sim import validate_scenario_params

        validate_scenario_params(
            "uniform", ["n_stations", "uplink_pps", "room_width_m", "seed"]
        )


class TestUniformScenario:
    def test_registered(self):
        assert "uniform" in available_scenarios()

    def test_scalar_rates_become_schedules(self):
        from repro.sim import ConstantRate

        config = scenario_config("uniform", uplink_pps=5.0, downlink_pps=9.0)
        assert config.uplink == ConstantRate(5.0)
        assert config.downlink == ConstantRate(9.0)

    def test_builds_and_runs(self):
        built = build_scenario("uniform", n_stations=2, duration_s=1.0)
        result = built.run()
        assert len(result.trace) > 0
