"""Tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(30, lambda: fired.append(30))
        sim.schedule_at(10, lambda: fired.append(10))
        sim.schedule_at(20, lambda: fired.append(20))
        sim.run_until(100)
        assert fired == [10, 20, 30]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5, lambda: fired.append("a"))
        sim.schedule_at(5, lambda: fired.append("b"))
        sim.run_until(10)
        assert fired == ["a", "b"]

    def test_schedule_in_relative(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(5, lambda: sim.schedule_in(7, lambda: fired.append(sim.now_us)))
        sim.run_until(100)
        assert fired == [12]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule_at(10, lambda: None)
        sim.run_until(10)
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_in(-1, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at(10, lambda: fired.append(1))
        handle.cancel()
        sim.run_until(100)
        assert fired == []
        assert not handle.pending

    def test_cancel_twice_is_safe(self):
        handle = Simulator().schedule_at(10, lambda: None)
        handle.cancel()
        handle.cancel()


class TestRunSemantics:
    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run_until(500)
        assert sim.now_us == 500

    def test_events_after_horizon_not_executed(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(100, lambda: fired.append(1))
        sim.run_until(99)
        assert fired == []
        sim.run_until(100)
        assert fired == [1]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now_us)
            if sim.now_us < 50:
                sim.schedule_in(10, chain)

        sim.schedule_at(0, chain)
        sim.run_until(100)
        assert fired == [0, 10, 20, 30, 40, 50]

    def test_run_all_safety_limit(self):
        sim = Simulator()

        def forever():
            sim.schedule_in(1, forever)

        sim.schedule_at(0, forever)
        with pytest.raises(RuntimeError, match="event limit"):
            sim.run_all(safety_limit=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule_at(t, lambda: None)
        sim.run_until(10)
        assert sim.events_processed == 5

    def test_run_all_drains_everything(self):
        sim = Simulator()
        fired = []
        for t in (5, 1, 9):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run_all()
        assert fired == [1, 5, 9]
        assert sim.now_us == 9

    def test_tombstones_do_not_count_against_safety_limit(self):
        """Cancelled events are discarded for free in both loop modes."""
        sim = Simulator()
        fired = []
        for t in range(10):
            handle = sim.schedule_at(t, lambda t=t: fired.append(t))
            if t % 2:
                handle.cancel()
        sim.run_all(safety_limit=5)  # 5 live events exactly: must not raise
        assert fired == [0, 2, 4, 6, 8]

    def test_run_until_then_run_all_continue_seamlessly(self):
        """The shared drain helper keeps the two modes interleavable."""
        sim = Simulator()
        fired = []
        for t in (10, 20, 30):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run_until(15)
        assert fired == [10]
        sim.run_all()
        assert fired == [10, 20, 30]


class TestTombstoneCompaction:
    def test_events_cancelled_counter(self):
        sim = Simulator()
        handles = [sim.schedule_at(t, lambda: None) for t in range(10)]
        for handle in handles[:4]:
            handle.cancel()
            handle.cancel()  # idempotent: must not double-count
        assert sim.events_cancelled == 4
        assert sim.events_pending == 6
        sim.run_all()
        assert sim.events_processed == 6
        assert sim.events_cancelled == 4

    def test_compaction_bounds_tombstones(self):
        """Mass cancellation compacts the heap instead of leaving corpses."""
        sim = Simulator()
        keep = [sim.schedule_at(1_000_000 + t, lambda: None) for t in range(50)]
        doomed = [sim.schedule_at(t, lambda: None) for t in range(2_000)]
        for handle in doomed:
            handle.cancel()
        # Tombstones can never dominate the heap (beyond the small
        # compaction floor).
        assert sim._tombstones * 2 <= len(sim._heap) + 1
        assert len(sim._heap) < 2_050 // 2
        assert sim.events_pending == 50
        fired = []
        for handle in keep:
            handle.callback = lambda: fired.append(True)
        sim.run_all()
        assert len(fired) == 50

    def test_compaction_preserves_firing_order(self):
        sim = Simulator()
        fired = []
        live = []
        for t in range(300):
            handle = sim.schedule_at(t, lambda t=t: fired.append(t))
            if t % 3 == 0:
                live.append(t)
            else:
                handle.cancel()
        sim.run_all()
        assert fired == live

    def test_cancel_all_then_run_small_heap(self):
        """Degenerate heap below the compaction floor: every entry is a
        tombstone.  run_all must drain cleanly — no IndexError, no
        stall, no spurious executions."""
        sim = Simulator()
        handles = [sim.schedule_at(t, lambda: None) for t in range(10)]
        for handle in handles:
            handle.cancel()
        assert sim.events_pending == 0
        sim.run_all()
        assert sim.events_processed == 0
        assert sim.events_cancelled == 10
        assert sim.events_pending == 0
        assert sim._heap == []
        assert sim._tombstones == 0

    def test_cancel_all_then_run_compacted_heap(self):
        """Cancel-all across the compaction threshold: compaction fires
        mid-cancellation, later cancels hit an already-rebuilt heap, and
        the tombstone accounting stays exact."""
        sim = Simulator()
        handles = [sim.schedule_at(t, lambda: None) for t in range(500)]
        for handle in handles:
            handle.cancel()
        assert sim.events_cancelled == 500
        assert sim.events_pending == 0
        # Compaction kept the all-tombstone heap from retaining corpses.
        assert len(sim._heap) < 500
        sim.run_all()
        assert sim.events_processed == 0
        assert sim.events_cancelled == 500
        assert sim.events_pending == 0
        assert sim._tombstones == 0

    def test_cancel_all_then_schedule_and_run(self):
        """The engine stays fully usable after a cancel-all sweep."""
        sim = Simulator()
        for handle in [sim.schedule_at(t, lambda: None) for t in range(200)]:
            handle.cancel()
        fired = []
        sim.schedule_at(10_000, lambda: fired.append(sim.now_us))
        sim.run_until(20_000)
        assert fired == [10_000]
        assert sim.events_processed == 1
        assert sim.events_cancelled == 200
        assert sim.now_us == 20_000

    def test_run_until_over_all_tombstones_advances_clock(self):
        sim = Simulator()
        for handle in [sim.schedule_at(500, lambda: None) for _ in range(80)]:
            handle.cancel()
        sim.run_until(1_000)
        assert sim.now_us == 1_000
        assert sim.events_processed == 0
        assert sim.events_pending == 0

    def test_cancel_heavy_rtscts_run_keeps_heap_lean(self):
        """An all-RTS/CTS network cancels a timeout per delivered frame;
        the heap must stay proportional to pending work and the counters
        must expose the churn."""
        from repro.sim import ScenarioBuilder, ScenarioConfig
        from repro.sim.traffic import ConstantRate

        built = ScenarioBuilder(
            ScenarioConfig(
                n_stations=6,
                duration_s=3.0,
                seed=17,
                rtscts_fraction=1.0,
                uplink=ConstantRate(30.0),
                downlink=ConstantRate(10.0),
            )
        ).build()
        result = built.run()
        sim = result.sim
        assert result.medium.frames_transmitted > 500
        assert sim.events_cancelled > 500          # handshake timeout churn
        assert sim.events_processed > 0
        # Post-run invariant: tombstones never dominate what is left.
        assert sim._tombstones * 2 <= len(sim._heap) + 64


class TestTimeoutHeap:
    """The ACK/CTS-timeout side heap: same ordering, isolated churn."""

    def test_interleaves_with_main_heap_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(30, lambda: fired.append("main-30"))
        sim.schedule_timeout_in(10, lambda: fired.append("timeout-10"))
        sim.schedule_at(20, lambda: fired.append("main-20"))
        sim.schedule_timeout_in(40, lambda: fired.append("timeout-40"))
        sim.run_until(100)
        assert fired == ["timeout-10", "main-20", "main-30", "timeout-40"]

    def test_ties_fire_in_scheduling_order_across_heaps(self):
        # The side heap shares the (time, sequence) counter, so a tie
        # between heaps resolves by scheduling order — exactly as the
        # single-heap engine would have fired them.
        sim = Simulator()
        fired = []
        sim.schedule_at(5, lambda: fired.append("a"))
        sim.schedule_timeout_in(5, lambda: fired.append("b"))
        sim.schedule_at(5, lambda: fired.append("c"))
        sim.run_until(10)
        assert fired == ["a", "b", "c"]

    def test_cancelled_timeout_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_timeout_in(10, lambda: fired.append("t"))
        handle.cancel()
        sim.run_until(100)
        assert fired == []
        assert sim.events_cancelled == 1

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="non-negative"):
            sim.schedule_timeout_in(-1, lambda: None)

    def test_events_pending_spans_both_heaps(self):
        sim = Simulator()
        sim.schedule_at(10, lambda: None)
        handle = sim.schedule_timeout_in(20, lambda: None)
        assert sim.events_pending == 2
        handle.cancel()
        assert sim.events_pending == 1

    def test_timeout_compaction_is_independent(self):
        # Cancel-heavy timeout traffic compacts the side heap without
        # touching (or being blocked by) the main heap's bookkeeping.
        sim = Simulator()
        sim.schedule_at(1_000_000, lambda: None)  # long-lived main event
        handles = [
            sim.schedule_timeout_in(500_000 + i, lambda: None)
            for i in range(200)
        ]
        for handle in handles:
            handle.cancel()
        # Compaction bounds residual tombstones to the floor below
        # which rebuilds are not worth it.
        assert sim._timeout_tombstones * 2 <= len(sim._timeout_heap) + 64
        assert sim.events_pending == 1
        sim.run_until(2_000_000)
        assert sim.events_processed == 1

    def test_run_until_horizon_respects_side_heap(self):
        sim = Simulator()
        fired = []
        sim.schedule_timeout_in(50, lambda: fired.append("late"))
        sim.schedule_at(10, lambda: fired.append("early"))
        sim.run_until(20)
        assert fired == ["early"]
        sim.run_until(100)
        assert fired == ["early", "late"]
